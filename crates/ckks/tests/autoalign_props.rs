//! Property tests for the auto-aligning evaluator: random sequences of
//! homomorphic operations over operands at *mismatched* levels must never
//! return an error under `EvalPolicy::AutoAlign`, and the decrypted
//! result must track exact `f64` arithmetic within the Table 1-style
//! precision tolerance — i.e. transparent repairs may not silently
//! corrupt values.

use bp_ckks::{Ciphertext, CkksContext, CkksParams, EvalPolicy, Representation, SecurityLevel};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

const LEVELS: usize = 4;
const SLOTS_CHECKED: usize = 4;

fn ctx(repr: Representation) -> CkksContext {
    let params = CkksParams::builder()
        .log_n(7)
        .word_bits(28)
        .representation(repr)
        .security(SecurityLevel::Insecure)
        .levels(LEVELS, 26)
        .base_modulus_bits(30)
        .dnum(2)
        .build()
        .expect("params");
    CkksContext::new(&params).expect("context")
}

/// An op stream entry: which two live ciphertexts to combine and how.
/// Indices are taken modulo the live list length, so any byte pattern is
/// a valid program.
#[derive(Debug, Clone, Copy)]
enum Op {
    Add,
    Sub,
    MulRescale,
}

fn arb_program() -> impl Strategy<Value = Vec<u8>> {
    // Flat byte program; decoded in chunks of 3 as
    // (op selector, left index seed, right index seed).
    proptest::collection::vec(0u8..255, 3..18)
}

/// Tracked pair: ciphertext plus its exact plaintext reference.
struct Tracked {
    ct: Ciphertext,
    vals: Vec<f64>,
}

fn run_program(repr: Representation, program: &[u8], seed: u64) -> Result<(), String> {
    let ctx = ctx(repr);
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    let keys = ctx.keygen(&mut rng);
    let ev = ctx.evaluator_with_policy(EvalPolicy::AutoAlign);

    // Seed population at deliberately mixed levels: one fresh ciphertext
    // at the top, one already adjusted down a level — so binary ops hit
    // level mismatches immediately.
    let xs = vec![0.50, -0.25, 0.30, -0.40];
    let ys = vec![0.20, 0.60, -0.50, 0.10];
    let cx = ctx.encrypt(&ctx.encode(&xs, ctx.max_level()), &keys.public, &mut rng);
    let cy_top = ctx.encrypt(&ctx.encode(&ys, ctx.max_level()), &keys.public, &mut rng);
    let cy = ev
        .adjust_to(&cy_top, ctx.max_level() - 1)
        .map_err(|e| format!("seed adjust: {e}"))?;
    let mut live = vec![Tracked { ct: cx, vals: xs }, Tracked { ct: cy, vals: ys }];

    for step in program.chunks_exact(3) {
        let (op_sel, li, ri) = (step[0], step[1], step[2]);
        let l = li as usize % live.len();
        let r = ri as usize % live.len();
        let op = match op_sel % 3 {
            0 => Op::Add,
            1 => Op::Sub,
            _ => Op::MulRescale,
        };
        // Multiplication needs a level to rescale into; stop consuming
        // depth rather than demand errors the policy can't repair
        // (AutoAlign fixes alignment, not exhaustion).
        let min_level = live[l].ct.level().min(live[r].ct.level());
        if matches!(op, Op::MulRescale) && min_level == 0 {
            continue;
        }
        let (ct, vals) = match op {
            Op::Add => (
                ev.add(&live[l].ct, &live[r].ct).map_err(|e| {
                    format!(
                        "add at levels {}/{}: {e}",
                        live[l].ct.level(),
                        live[r].ct.level()
                    )
                })?,
                live[l]
                    .vals
                    .iter()
                    .zip(&live[r].vals)
                    .map(|(a, b)| a + b)
                    .collect(),
            ),
            Op::Sub => (
                ev.sub(&live[l].ct, &live[r].ct).map_err(|e| {
                    format!(
                        "sub at levels {}/{}: {e}",
                        live[l].ct.level(),
                        live[r].ct.level()
                    )
                })?,
                live[l]
                    .vals
                    .iter()
                    .zip(&live[r].vals)
                    .map(|(a, b)| a - b)
                    .collect(),
            ),
            Op::MulRescale => {
                let prod = ev
                    .mul(&live[l].ct, &live[r].ct, &keys.evaluation)
                    .map_err(|e| {
                        format!(
                            "mul at levels {}/{}: {e}",
                            live[l].ct.level(),
                            live[r].ct.level()
                        )
                    })?;
                let rescaled = ev.rescale(&prod).map_err(|e| format!("rescale: {e}"))?;
                (
                    rescaled,
                    live[l]
                        .vals
                        .iter()
                        .zip(&live[r].vals)
                        .map(|(a, b)| a * b)
                        .collect(),
                )
            }
        };
        // Magnitude guard: values stay in the regime where the fixed
        // tolerance is meaningful (products of sums can grow).
        let vals: Vec<f64> = vals;
        if vals.iter().any(|v| v.abs() > 4.0) {
            continue;
        }
        live.push(Tracked { ct, vals });
    }

    // Every live ciphertext must decrypt within tolerance.
    for (i, t) in live.iter().enumerate() {
        let got = ctx
            .decrypt_to_values(&t.ct, &keys.secret, SLOTS_CHECKED)
            .map_err(|e| format!("decrypt of result {i}: {e}"))?;
        for (g, w) in got.iter().zip(&t.vals) {
            if (g - w).abs() > 5e-2 {
                return Err(format!("result {i}: got {g}, want {w}"));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn autoalign_never_errors_and_stays_precise_bitpacker(
        program in arb_program(),
        seed in 0u64..1000,
    ) {
        if let Err(e) = run_program(Representation::BitPacker, &program, seed) {
            prop_assert!(false, "{e}");
        }
    }

    #[test]
    fn autoalign_never_errors_and_stays_precise_rns(
        program in arb_program(),
        seed in 0u64..1000,
    ) {
        if let Err(e) = run_program(Representation::RnsCkks, &program, seed) {
            prop_assert!(false, "{e}");
        }
    }
}

#[test]
fn autoalign_records_repairs() {
    // Deterministic check that the repair log actually counts: adding a
    // fresh top-level ciphertext to a rescaled product needs one adjust
    // and one rescale.
    let ctx = ctx(Representation::BitPacker);
    let mut rng = ChaCha20Rng::seed_from_u64(99);
    let keys = ctx.keygen(&mut rng);
    let ev = ctx.evaluator_with_policy(EvalPolicy::AutoAlign);
    let ct = ctx.encrypt(&ctx.encode(&[0.5], ctx.max_level()), &keys.public, &mut rng);
    let prod = ev.mul(&ct, &ct, &keys.evaluation).unwrap(); // scale S², top level
    let sum = ev.add(&prod, &ct).unwrap(); // needs repair
    assert!(ev.repairs().total() > 0, "repairs should have been logged");
    let got = ctx.decrypt_to_values(&sum, &keys.secret, 1).unwrap();
    assert!((got[0] - (0.25 + 0.5)).abs() < 1e-2, "got {}", got[0]);

    ev.repairs().reset();
    assert_eq!(ev.repairs().total(), 0);
}
