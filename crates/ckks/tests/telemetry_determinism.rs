//! Worker-count invariance of the deterministic telemetry counters.
//!
//! For a fixed op program, every counter classified deterministic
//! (NTT/elementwise/basis/keyswitch/rescale/adjust/eval-op counts — not
//! the pool-utilization gauges) and the full recorded op sequence must be
//! bit-identical whether the thread pool runs 1 worker or 4.
//!
//! Telemetry state is process-global, so this file holds exactly one test
//! (integration tests get their own process; `#[test]` fns within one
//! file would race).

#![cfg(feature = "telemetry")]

use bp_ckks::telemetry::counters::{self, Counter};
use bp_ckks::telemetry::{self, trace};
use bp_ckks::{BpThreadPool, CkksContext, CkksParams, Representation, SecurityLevel};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::sync::Arc;

fn run_program(threads: usize) -> (Vec<(Counter, u64)>, Vec<String>) {
    let params = CkksParams::builder()
        .log_n(10)
        .word_bits(28)
        .representation(Representation::BitPacker)
        .security(SecurityLevel::Insecure)
        .levels(3, 40)
        .base_modulus_bits(50)
        .build()
        .expect("params");
    let ctx =
        CkksContext::with_threads(&params, Arc::new(BpThreadPool::new(threads))).expect("context");
    let mut rng = ChaCha20Rng::seed_from_u64(5);
    let mut keys = ctx.keygen(&mut rng);
    ctx.gen_rotation_keys(&mut keys, &[1], &mut rng);
    let vals: Vec<f64> = (0..ctx.params().slots())
        .map(|i| (i as f64).cos() / 3.0)
        .collect();
    let ct = ctx.encrypt(&ctx.encode(&vals, ctx.max_level()), &keys.public, &mut rng);

    // Count only the op program itself, not setup.
    telemetry::reset();
    trace::set_meta(ctx.telemetry_meta("determinism"));
    let ev = ctx.evaluator();
    let prod = ev.mul(&ct, &ct, &keys.evaluation).expect("mul");
    let rot = ev.rotate(&prod, 1, &keys.evaluation).expect("rotate");
    let sum = ev.add(&prod, &rot).expect("add");
    let low = ev.rescale(&sum).expect("rescale");
    let adjusted = ev.adjust_to(&ct, low.level()).expect("adjust");
    let _ = ev.sub(&low, &adjusted);

    let snap = counters::deterministic_snapshot();
    let ops: Vec<String> = trace::take()
        .entries
        .iter()
        .map(|e| {
            format!(
                "{}:{} l{} r{} s{} a{}",
                e.seq,
                e.op.kind.name(),
                e.op.level,
                e.op.residues,
                e.op.shed,
                e.op.added
            )
        })
        .collect();
    telemetry::reset();
    (snap, ops)
}

#[test]
fn deterministic_counters_and_op_sequence_are_worker_count_invariant() {
    let (seq1, ops1) = run_program(1);
    let (seq4, ops4) = run_program(4);

    // Nonzero: the program exercised every deterministic counter class
    // that the pipeline touches.
    let get = |snap: &[(Counter, u64)], c: Counter| {
        snap.iter()
            .find(|(k, _)| *k == c)
            .map(|&(_, v)| v)
            .expect("present")
    };
    for c in [
        Counter::NttForward,
        Counter::NttInverse,
        Counter::ElemwiseOps,
        Counter::BasisConversions,
        Counter::KeySwitches,
        Counter::Rescales,
        Counter::Adjusts,
        Counter::EvalOps,
    ] {
        assert!(get(&seq1, c) > 0, "{} should be nonzero", c.name());
    }
    // The sub at the end ran 6 public ops plus the adjust trace entry.
    assert_eq!(get(&seq1, Counter::EvalOps), ops1.len() as u64);

    // Bit-identical across worker counts.
    assert_eq!(
        seq1, seq4,
        "deterministic counters diverged across worker counts"
    );
    assert_eq!(
        ops1, ops4,
        "recorded op sequence diverged across worker counts"
    );
}
