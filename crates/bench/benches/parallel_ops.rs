//! Criterion micro-benchmarks for the residue-parallel execution engine:
//! the hot evaluator operations at N ∈ {4096, 8192} crossed with worker
//! counts {1, 4} (`BpThreadPool`).

use bp_ckks::{BpThreadPool, CkksContext, CkksParams, KeySet, Representation, SecurityLevel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::sync::Arc;

fn setup(log_n: u32, threads: usize) -> (CkksContext, KeySet) {
    let params = CkksParams::builder()
        .log_n(log_n)
        .word_bits(28)
        .representation(Representation::BitPacker)
        .security(SecurityLevel::Insecure)
        .levels(4, 40)
        .base_modulus_bits(50)
        .build()
        .expect("params");
    let ctx =
        CkksContext::with_threads(&params, Arc::new(BpThreadPool::new(threads))).expect("context");
    let mut rng = ChaCha20Rng::seed_from_u64(99);
    let mut keys = ctx.keygen(&mut rng);
    ctx.gen_rotation_keys(&mut keys, &[1], &mut rng);
    (ctx, keys)
}

fn bench_parallel_ops(c: &mut Criterion) {
    for log_n in [12u32, 13] {
        let n = 1usize << log_n;
        for threads in [1usize, 4] {
            let (ctx, keys) = setup(log_n, threads);
            let mut rng = ChaCha20Rng::seed_from_u64(7);
            let vals: Vec<f64> = (0..ctx.params().slots())
                .map(|i| (i as f64).sin() / 2.0)
                .collect();
            let ct = ctx.encrypt(&ctx.encode(&vals, ctx.max_level()), &keys.public, &mut rng);
            let ev = ctx.evaluator();
            let id = format!("t{threads}");

            let mut g = c.benchmark_group(format!("ntt_roundtrip/n{n}"));
            g.sample_size(10);
            let mut poly = ct.c0().clone();
            g.bench_function(BenchmarkId::from_parameter(&id), |b| {
                b.iter(|| {
                    poly.to_coeff();
                    poly.to_ntt();
                })
            });
            g.finish();

            let mut g = c.benchmark_group(format!("mul_relin_rescale/n{n}"));
            g.sample_size(10);
            g.bench_function(BenchmarkId::from_parameter(&id), |b| {
                b.iter(|| {
                    let prod = ev.mul(&ct, &ct, &keys.evaluation).expect("aligned");
                    ev.rescale(&prod).expect("levels left")
                })
            });
            g.finish();

            let mut g = c.benchmark_group(format!("rotate/n{n}"));
            g.sample_size(10);
            g.bench_function(BenchmarkId::from_parameter(&id), |b| {
                b.iter(|| ev.rotate(&ct, 1, &keys.evaluation).expect("key exists"))
            });
            g.finish();

            let mut g = c.benchmark_group(format!("adjust/n{n}"));
            g.sample_size(10);
            g.bench_function(BenchmarkId::from_parameter(&id), |b| {
                b.iter(|| ev.adjust_to(&ct, ctx.max_level() - 1).expect("level > 0"))
            });
            g.finish();
        }
    }
}

criterion_group!(benches, bench_parallel_ops);
criterion_main!(benches);
