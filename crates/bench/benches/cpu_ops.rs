//! Criterion micro-benchmarks backing Fig. 13: per-operation CPU cost of
//! the real library under both representations.

use bp_ckks::{CkksContext, CkksParams, KeySet, Representation, SecurityLevel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn setup(repr: Representation) -> (CkksContext, KeySet) {
    let word_bits = match repr {
        Representation::BitPacker => 28,
        Representation::RnsCkks => 61,
    };
    let params = CkksParams::builder()
        .log_n(11)
        .word_bits(word_bits)
        .representation(repr)
        .security(SecurityLevel::Insecure)
        .levels(6, 40)
        .base_modulus_bits(50)
        .build()
        .expect("params");
    let ctx = CkksContext::new(&params).expect("context");
    let mut rng = ChaCha20Rng::seed_from_u64(99);
    let mut keys = ctx.keygen(&mut rng);
    ctx.gen_rotation_keys(&mut keys, &[1], &mut rng);
    (ctx, keys)
}

fn bench_ops(c: &mut Criterion) {
    for repr in [Representation::BitPacker, Representation::RnsCkks] {
        let (ctx, keys) = setup(repr);
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        let vals: Vec<f64> = (0..ctx.params().slots())
            .map(|i| (i as f64).sin() / 2.0)
            .collect();
        let ct = ctx.encrypt(&ctx.encode(&vals, ctx.max_level()), &keys.public, &mut rng);
        let ev = ctx.evaluator();
        let name = repr.to_string();

        let mut g = c.benchmark_group("hmult");
        g.sample_size(10);
        g.bench_function(BenchmarkId::from_parameter(&name), |b| {
            b.iter(|| ev.mul(&ct, &ct, &keys.evaluation))
        });
        g.finish();

        let prod = ev.mul(&ct, &ct, &keys.evaluation).expect("aligned");
        let mut g = c.benchmark_group("rescale");
        g.sample_size(10);
        g.bench_function(BenchmarkId::from_parameter(&name), |b| {
            b.iter(|| ev.rescale(&prod))
        });
        g.finish();

        let mut g = c.benchmark_group("rotate");
        g.sample_size(10);
        g.bench_function(BenchmarkId::from_parameter(&name), |b| {
            b.iter(|| ev.rotate(&ct, 1, &keys.evaluation))
        });
        g.finish();

        let mut g = c.benchmark_group("adjust");
        g.sample_size(10);
        g.bench_function(BenchmarkId::from_parameter(&name), |b| {
            b.iter(|| ev.adjust_to(&ct, ctx.max_level() - 1))
        });
        g.finish();

        let mut g = c.benchmark_group("hadd");
        g.sample_size(20);
        g.bench_function(BenchmarkId::from_parameter(&name), |b| {
            b.iter(|| ev.add(&ct, &ct))
        });
        g.finish();
    }
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
