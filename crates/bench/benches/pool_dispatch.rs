//! Dispatch-overhead microbenchmarks for the persistent worker pool.
//!
//! These isolate the *fan-out machinery* from the kernels it runs:
//!
//! * `empty`   — dispatch with a no-op chunk body: pure wake/claim/latch
//!   round-trip cost of the parked pool.
//! * `tiny`    — a 64-element touch per dispatch: the smallest fan-out the
//!   evaluator ever attempts, i.e. the case the adaptive cutoff guards.
//! * `inline`  — the same tiny body routed through the cutoff (work hint
//!   below the threshold), which must cost barely more than a plain loop.
//! * `spawn_scoped` — the pre-persistent-pool strategy (spawn scoped
//!   threads per dispatch) on the identical body, as the A/B reference
//!   the rewrite is justified against. On Linux a thread spawn+join is
//!   tens of microseconds; a parked wake is hundreds of nanoseconds.
//!
//! Run with `cargo bench --bench pool_dispatch`.

use bp_ckks::BpThreadPool;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const WORKERS: usize = 4;
const TINY: usize = 64;

/// The old per-dispatch strategy: spawn `workers` scoped threads, each
/// running one chunk, join them all. Kept here (not in `bp-par`) purely
/// as the benchmark baseline.
fn spawn_scoped_for_each(workers: usize, n: usize, f: impl Fn(usize) + Sync) {
    let chunk = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let f = &f;
            scope.spawn(move || {
                let start = w * chunk;
                let end = (start + chunk).min(n);
                for i in start..end {
                    f(i);
                }
            });
        }
    });
}

fn bench_pool_dispatch(c: &mut Criterion) {
    let pool = BpThreadPool::new(WORKERS);
    // Warm the pool so thread spawning is not measured.
    pool.par_for_each(WORKERS, |_| {});

    let mut g = c.benchmark_group("pool_dispatch/empty");
    g.bench_function(BenchmarkId::from_parameter(format!("t{WORKERS}")), |b| {
        b.iter(|| {
            pool.par_for_each(black_box(WORKERS), |i| {
                black_box(i);
            })
        })
    });
    g.finish();

    let mut g = c.benchmark_group("pool_dispatch/tiny");
    let mut buf = vec![0u64; TINY];
    g.bench_function(BenchmarkId::from_parameter(format!("t{WORKERS}")), |b| {
        b.iter(|| {
            pool.par_for_each_mut(&mut buf, |i, x| *x = i as u64);
            black_box(buf[0]);
        })
    });
    g.finish();

    // Adaptive cutoff: same tiny body, but with an honest (tiny) work
    // hint so the pool inlines it. This is the path every sub-threshold
    // kernel takes after the rewrite.
    let cutoff = BpThreadPool::with_min_work(WORKERS, 16 * 1024);
    cutoff.par_for_each(WORKERS, |_| {}); // warm
    let mut g = c.benchmark_group("pool_dispatch/inline");
    g.bench_function(BenchmarkId::from_parameter(format!("t{WORKERS}")), |b| {
        b.iter(|| {
            cutoff.par_for_each_mut_with_work(&mut buf, 1, |i, x| *x = i as u64);
            black_box(buf[0]);
        })
    });
    g.finish();

    // A/B reference: the spawn-per-dispatch strategy this PR replaced.
    let mut g = c.benchmark_group("pool_dispatch/spawn_scoped");
    g.sample_size(20);
    g.bench_function(BenchmarkId::from_parameter(format!("t{WORKERS}")), |b| {
        b.iter(|| {
            spawn_scoped_for_each(WORKERS, TINY, |i| {
                black_box(i);
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pool_dispatch);
criterion_main!(benches);
