//! A/B overhead guard for the telemetry disabled path.
//!
//! The instrumentation contract is that with the `telemetry` feature off,
//! every recording entry point compiles to a true no-op, so the evaluator
//! hot path costs the same as before the instrumentation landed. This
//! bench pins that down: run it twice —
//!
//! ```text
//! cargo bench -p bp-bench --bench telemetry_overhead
//! cargo bench -p bp-bench --bench telemetry_overhead --features telemetry
//! ```
//!
//! — and compare the `telemetry_off` and `telemetry_on` series. The
//! disabled build must sit within 1% of the pre-instrumentation baseline
//! (criterion's own change detection across commits covers that); the
//! enabled build shows the true cost of live recording.

use bp_ckks::{CkksContext, CkksParams, KeySet, Representation, SecurityLevel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn setup() -> (CkksContext, KeySet) {
    let params = CkksParams::builder()
        .log_n(12)
        .word_bits(28)
        .representation(Representation::BitPacker)
        .security(SecurityLevel::Insecure)
        .levels(4, 40)
        .base_modulus_bits(50)
        .build()
        .expect("params");
    let ctx = CkksContext::new(&params).expect("context");
    let mut rng = ChaCha20Rng::seed_from_u64(99);
    let keys = ctx.keygen(&mut rng);
    (ctx, keys)
}

fn bench_overhead(c: &mut Criterion) {
    let variant = if cfg!(feature = "telemetry") {
        "telemetry_on"
    } else {
        "telemetry_off"
    };
    let (ctx, keys) = setup();
    let mut rng = ChaCha20Rng::seed_from_u64(7);
    let vals: Vec<f64> = (0..ctx.params().slots())
        .map(|i| (i as f64).sin() / 2.0)
        .collect();
    let ct = ctx.encrypt(&ctx.encode(&vals, ctx.max_level()), &keys.public, &mut rng);
    let ev = ctx.evaluator();

    let mut g = c.benchmark_group("mul_relin_rescale");
    g.sample_size(20);
    g.bench_function(BenchmarkId::from_parameter(variant), |b| {
        b.iter(|| {
            let prod = ev.mul(&ct, &ct, &keys.evaluation).expect("aligned");
            std::hint::black_box(ev.rescale(&prod).expect("levels left"))
        })
    });
    g.finish();

    // The cheapest op is where per-call overhead would surface first.
    let mut g = c.benchmark_group("add");
    g.sample_size(60);
    g.bench_function(BenchmarkId::from_parameter(variant), |b| {
        b.iter(|| std::hint::black_box(ev.add(&ct, &ct).expect("aligned")))
    });
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
