//! Criterion benchmark for modulus-chain construction (the paper states the
//! selection algorithm "completes in less than a second for all word sizes"
//! — Sec. 3.3).

use bp_ckks::{CkksParams, ModulusChain, Representation, SecurityLevel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("chain_construction");
    g.sample_size(10);
    for w in [28u32, 36, 64] {
        for repr in [Representation::BitPacker, Representation::RnsCkks] {
            let params = CkksParams::builder()
                .log_n(16)
                .word_bits(w)
                .representation(repr)
                .security(SecurityLevel::Bits128)
                .scale_schedule(vec![45; 16])
                .base_modulus_bits(60)
                .build()
                .expect("params");
            g.bench_function(BenchmarkId::new(repr.to_string(), w), |b| {
                b.iter(|| ModulusChain::new(&params).expect("chain"))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_chain);
criterion_main!(benches);
