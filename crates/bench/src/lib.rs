//! Shared harness utilities for the figure/table regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure from the
//! paper's evaluation (see DESIGN.md's per-experiment index). They print an
//! aligned table to stdout and drop a CSV under `results/` so the series
//! can be re-plotted.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use bp_accel::{simulate, AcceleratorConfig, SimReport};
use bp_ckks::{Representation, SecurityLevel};
use bp_workloads::WorkloadSpec;
use std::io::Write;
use std::path::PathBuf;

/// Geometric mean of a slice.
///
/// # Panics
/// Panics if `xs` is empty or contains non-positive values.
pub fn gmean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "gmean of empty slice");
    let s: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "gmean requires positive values");
            x.ln()
        })
        .sum();
    (s / xs.len() as f64).exp()
}

/// Writes a CSV file under `results/` (created if needed), returning the
/// path. Errors are reported but non-fatal (the table already went to
/// stdout).
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> Option<PathBuf> {
    let dir =
        PathBuf::from(std::env::var("BP_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(name);
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{header}");
            for r in rows {
                let _ = writeln!(f, "{r}");
            }
            println!("\n[csv] {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Simulates one workload under one representation at the given machine.
///
/// # Panics
/// Panics if the chain cannot be built (paper parameters always can).
pub fn run_workload(
    spec: &WorkloadSpec,
    repr: Representation,
    cfg: &AcceleratorConfig,
    security: SecurityLevel,
) -> SimReport {
    let (chain, app_levels) = spec
        .build_chain(repr, cfg.word_bits, security)
        .unwrap_or_else(|e| panic!("{}: chain build failed: {e}", spec.name()));
    let (trace, ctx) = spec.trace(&chain, app_levels);
    let ws = spec.working_set_mb(&chain);
    simulate(&trace, cfg, &ctx, ws)
}

/// The word sizes swept in Figs. 14–16.
pub const WORD_SIZES: [u32; 10] = [28, 32, 36, 40, 44, 48, 52, 56, 60, 64];

/// Quartile summary of a sample (used by the Fig. 18/19 box plots).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes box-plot statistics.
///
/// # Panics
/// Panics if `xs` is empty.
pub fn box_stats(xs: &mut [f64]) -> BoxStats {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let pick = |q: f64| xs[((xs.len() - 1) as f64 * q).round() as usize];
    BoxStats {
        min: xs[0],
        q1: pick(0.25),
        median: pick(0.5),
        q3: pick(0.75),
        max: xs[xs.len() - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_matches_definition() {
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn box_stats_ordering() {
        let mut xs = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let b = box_stats(&mut xs);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert!(b.q1 <= b.median && b.median <= b.q3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn gmean_empty_panics() {
        gmean(&[]);
    }
}
