//! Shared harness utilities for the figure/table regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure from the
//! paper's evaluation (see DESIGN.md's per-experiment index). They print an
//! aligned table to stdout and drop a CSV under `results/` so the series
//! can be re-plotted.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use bp_accel::{simulate, AcceleratorConfig, SimReport};
use bp_ckks::{Representation, SecurityLevel};
use bp_telemetry::json::Obj;
use bp_workloads::WorkloadSpec;
use std::io::Write;
use std::path::PathBuf;

/// Stable run-environment metadata stamped as the header of every JSON
/// document the harness emits (`BENCH_cpu.json`, `TRACE_*.json`): schema
/// version, git commit, machine shape, and the harness-supplied
/// timestamp. Keeping the header shape fixed lets successive PRs diff
/// emitted documents mechanically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// Document schema identifier (e.g. `bitpacker-cpu-bench/v2`).
    pub schema: String,
    /// `git rev-parse HEAD` of the emitting checkout, or `unknown`.
    pub git_commit: String,
    /// Available hardware parallelism on the emitting machine.
    pub cores: usize,
    /// The worker count the global `BpThreadPool` actually resolved to
    /// (decimal string) — the effective value after `BITPACKER_THREADS`
    /// and core-count defaulting, not the raw env var.
    pub bitpacker_threads: String,
    /// RFC 3339 UTC emission time. `BP_BENCH_TIMESTAMP` overrides the
    /// clock so reruns with the same inputs can emit byte-identical
    /// headers.
    pub timestamp: String,
}

/// Formats seconds since the Unix epoch as an RFC 3339 UTC timestamp
/// (`YYYY-MM-DDTHH:MM:SSZ`). Civil-date conversion is done inline (no
/// date-time dependency in the workspace).
pub fn rfc3339_utc(secs_since_epoch: u64) -> String {
    let days = (secs_since_epoch / 86_400) as i64;
    let rem = secs_since_epoch % 86_400;
    let (hh, mm, ss) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    // Howard Hinnant's civil_from_days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = yoe + era * 400 + i64::from(month <= 2);
    format!("{year:04}-{month:02}-{day:02}T{hh:02}:{mm:02}:{ss:02}Z")
}

impl RunMeta {
    /// Collects the header for a document with the given schema.
    pub fn collect(schema: &str) -> Self {
        let git_commit = std::process::Command::new("git")
            .args(["rev-parse", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        RunMeta {
            schema: schema.to_string(),
            git_commit,
            cores: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            bitpacker_threads: bp_ckks::BpThreadPool::global().workers().to_string(),
            timestamp: std::env::var("BP_BENCH_TIMESTAMP").unwrap_or_else(|_| {
                let secs = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_secs())
                    .unwrap_or(0);
                rfc3339_utc(secs)
            }),
        }
    }

    /// Starts an order-preserving JSON object with the header fields;
    /// callers chain their payload fields after it.
    pub fn header(&self) -> Obj {
        Obj::new()
            .str("schema", &self.schema)
            .str("git_commit", &self.git_commit)
            .u64("cores", self.cores as u64)
            .str("bitpacker_threads", &self.bitpacker_threads)
            .str("timestamp", &self.timestamp)
    }
}

/// Geometric mean of a slice.
///
/// # Panics
/// Panics if `xs` is empty or contains non-positive values.
pub fn gmean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "gmean of empty slice");
    let s: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "gmean requires positive values");
            x.ln()
        })
        .sum();
    (s / xs.len() as f64).exp()
}

/// Writes a CSV file under `results/` (created if needed), returning the
/// path. Errors are reported but non-fatal (the table already went to
/// stdout).
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> Option<PathBuf> {
    let dir =
        PathBuf::from(std::env::var("BP_RESULTS_DIR").unwrap_or_else(|_| "results".to_string()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(name);
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let _ = writeln!(f, "{header}");
            for r in rows {
                let _ = writeln!(f, "{r}");
            }
            println!("\n[csv] {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Simulates one workload under one representation at the given machine.
///
/// # Panics
/// Panics if the chain cannot be built (paper parameters always can).
pub fn run_workload(
    spec: &WorkloadSpec,
    repr: Representation,
    cfg: &AcceleratorConfig,
    security: SecurityLevel,
) -> SimReport {
    let (chain, app_levels) = spec
        .build_chain(repr, cfg.word_bits, security)
        .unwrap_or_else(|e| panic!("{}: chain build failed: {e}", spec.name()));
    let (trace, ctx) = spec.trace(&chain, app_levels);
    let ws = spec.working_set_mb(&chain);
    simulate(&trace, cfg, &ctx, ws)
}

/// The word sizes swept in Figs. 14–16.
pub const WORD_SIZES: [u32; 10] = [28, 32, 36, 40, 44, 48, 52, 56, 60, 64];

/// Quartile summary of a sample (used by the Fig. 18/19 box plots).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

/// Computes box-plot statistics.
///
/// # Panics
/// Panics if `xs` is empty.
pub fn box_stats(xs: &mut [f64]) -> BoxStats {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let pick = |q: f64| xs[((xs.len() - 1) as f64 * q).round() as usize];
    BoxStats {
        min: xs[0],
        q1: pick(0.25),
        median: pick(0.5),
        q3: pick(0.75),
        max: xs[xs.len() - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_matches_definition() {
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((gmean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn box_stats_ordering() {
        let mut xs = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let b = box_stats(&mut xs);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert!(b.q1 <= b.median && b.median <= b.q3);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn gmean_empty_panics() {
        gmean(&[]);
    }

    #[test]
    fn run_meta_header_has_the_stable_field_set() {
        use bp_telemetry::json::Json;
        let meta = RunMeta::collect("bitpacker-cpu-bench/v2");
        let doc = Json::parse(&meta.header().u64("payload", 1).build()).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("bitpacker-cpu-bench/v2")
        );
        // Commit hash or the explicit "unknown" sentinel — never absent.
        let commit = doc.get("git_commit").and_then(Json::as_str).expect("str");
        assert!(!commit.is_empty());
        assert!(doc.get("cores").and_then(Json::as_u64).expect("u64") >= 1);
        // The thread count is the pool's resolved worker count — an
        // actual number, never the literal "unset".
        let threads = doc
            .get("bitpacker_threads")
            .and_then(Json::as_str)
            .expect("str");
        assert!(threads.parse::<usize>().expect("numeric thread count") >= 1);
        // The timestamp is RFC 3339 UTC (or the BP_BENCH_TIMESTAMP
        // override) — never the literal "unset".
        let ts = doc.get("timestamp").and_then(Json::as_str).expect("str");
        assert_ne!(ts, "unset");
        if std::env::var("BP_BENCH_TIMESTAMP").is_err() {
            assert_eq!(ts.len(), 20, "RFC 3339 shape: {ts}");
            assert_eq!(&ts[4..5], "-");
            assert_eq!(&ts[10..11], "T");
            assert!(ts.ends_with('Z'));
        }
        // Header fields come first so documents stay mechanically diffable.
        let text = meta.header().u64("payload", 1).build();
        assert!(text.starts_with("{\"schema\":"));
    }

    #[test]
    fn rfc3339_utc_converts_known_instants() {
        assert_eq!(rfc3339_utc(0), "1970-01-01T00:00:00Z");
        // 2026-08-07 12:34:56 UTC.
        assert_eq!(rfc3339_utc(1_786_106_096), "2026-08-07T12:34:56Z");
        // Leap-day handling.
        assert_eq!(rfc3339_utc(1_709_164_800), "2024-02-29T00:00:00Z");
    }
}
