//! Fig. 14: execution time vs hardware word size (28–64 bits), per
//! workload, both schemes, under iso-throughput scaling.
//!
//! The paper's signature result: BitPacker's curve is flat (it always fills
//! the datapath), while RNS-CKKS shows peaks and valleys tied to how each
//! workload's scales divide into words.

use bp_accel::AcceleratorConfig;
use bp_bench::{run_workload, write_csv, WORD_SIZES};
use bp_ckks::{Representation, SecurityLevel};
use bp_workloads::WorkloadSpec;

fn main() {
    let base = AcceleratorConfig::craterlake();
    println!("Fig. 14 — execution time (ms) vs word size, iso-throughput machines\n");
    let mut rows = Vec::new();
    for spec in WorkloadSpec::all() {
        println!("{}:", spec.name());
        print!("  {:<10}", "w");
        for w in WORD_SIZES {
            print!(" {w:>7}");
        }
        println!();
        for repr in [Representation::BitPacker, Representation::RnsCkks] {
            print!("  {:<10}", repr.to_string());
            for w in WORD_SIZES {
                let cfg = base.with_word_bits(w);
                let rep = run_workload(&spec, repr, &cfg, SecurityLevel::Bits128);
                print!(" {:>7.2}", rep.ms);
                rows.push(format!("{},{repr},{w},{:.4}", spec.name(), rep.ms));
            }
            println!();
        }
    }
    println!("\n(BitPacker row should be ~flat; RNS-CKKS row rises with word size,");
    println!(" with valleys where a scale divides the word evenly — paper Fig. 14)");
    write_csv(
        "fig14_wordsize_sweep.csv",
        "workload,scheme,word_bits,ms",
        &rows,
    );
}
