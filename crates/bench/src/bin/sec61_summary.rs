//! Sec. 6.1 summary: EDP at 128-bit security, plus the 80-bit-security
//! sensitivity study.
//!
//! Paper: EDP improves 2.53x at 128-bit security; at 80-bit parameters the
//! speedup is similar (53% vs 59%) because all parameter sets benefit from
//! the more compact representation.

use bp_accel::AcceleratorConfig;
use bp_bench::{gmean, run_workload, write_csv};
use bp_ckks::{Representation, SecurityLevel};
use bp_workloads::WorkloadSpec;

fn main() {
    let cfg = AcceleratorConfig::craterlake();
    println!("Sec. 6.1 — security-level sensitivity (28-bit CraterLake)\n");
    println!(
        "{:<10} {:>14} {:>14} {:>12}",
        "security", "gmean speedup", "energy gain", "EDP gain"
    );
    let mut rows = Vec::new();
    for (name, sec) in [
        ("128-bit", SecurityLevel::Bits128),
        ("80-bit", SecurityLevel::Bits80),
    ] {
        let mut speedups = Vec::new();
        let mut energies = Vec::new();
        let mut edps = Vec::new();
        for spec in WorkloadSpec::all() {
            let bp = run_workload(&spec, Representation::BitPacker, &cfg, sec);
            let rc = run_workload(&spec, Representation::RnsCkks, &cfg, sec);
            speedups.push(rc.ms / bp.ms);
            energies.push(rc.energy.total_mj() / bp.energy.total_mj());
            edps.push(rc.edp() / bp.edp());
        }
        let (s, e, d) = (gmean(&speedups), gmean(&energies), gmean(&edps));
        println!("{name:<10} {s:>13.2}x {e:>13.2}x {d:>11.2}x");
        rows.push(format!("{name},{s:.3},{e:.3},{d:.3}"));
    }
    println!("\npaper: 59% speedup / 59% energy / 2.53x EDP at 128-bit;");
    println!("       53% speedup / 63% energy at 80-bit — similar benefits");
    write_csv(
        "sec61_summary.csv",
        "security,gmean_speedup,gmean_energy_gain,gmean_edp_gain",
        &rows,
    );
}
