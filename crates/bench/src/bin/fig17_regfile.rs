//! Fig. 17: gmean execution time vs register-file capacity on the 28-bit
//! design, normalized to BitPacker at 256 MB.
//!
//! Paper: RNS-CKKS plateaus at 256 MB and degrades steadily below it (>3x
//! at 150 MB); BitPacker's smaller ciphertexts keep it flat down to 200 MB
//! with only ~70% slowdown at 150 MB — enabling the Sec. 6.3 area-reduced
//! configuration.

use bp_accel::AcceleratorConfig;
use bp_bench::{gmean, run_workload, write_csv};
use bp_ckks::{Representation, SecurityLevel};
use bp_workloads::WorkloadSpec;

fn main() {
    let base = AcceleratorConfig::craterlake();
    println!("Fig. 17 — gmean execution time vs register-file size (28-bit words)\n");
    println!("{:>8} {:>12} {:>12}", "RF (MB)", "BitPacker", "RNS-CKKS");
    let mut rows = Vec::new();
    let mut baseline = None;
    for mb in [150.0, 175.0, 200.0, 225.0, 256.0, 300.0, 350.0] {
        let cfg = base.with_regfile_mb(mb);
        let mut bp_ms = Vec::new();
        let mut rc_ms = Vec::new();
        for spec in WorkloadSpec::all() {
            bp_ms.push(
                run_workload(
                    &spec,
                    Representation::BitPacker,
                    &cfg,
                    SecurityLevel::Bits128,
                )
                .ms,
            );
            rc_ms.push(
                run_workload(&spec, Representation::RnsCkks, &cfg, SecurityLevel::Bits128).ms,
            );
        }
        let (gbp, grc) = (gmean(&bp_ms), gmean(&rc_ms));
        if mb == 256.0 {
            baseline = Some(gbp);
        }
        rows.push((mb, gbp, grc));
    }
    let norm = baseline.expect("256 MB point present");
    let mut csv = Vec::new();
    for (mb, gbp, grc) in rows {
        println!("{mb:>8.0} {:>12.2} {:>12.2}", gbp / norm, grc / norm);
        csv.push(format!("{mb},{:.4},{:.4}", gbp / norm, grc / norm));
    }
    println!("\npaper: at 150 MB BitPacker slows ~1.7x, RNS-CKKS > 3x");
    write_csv("fig17_regfile.csv", "rf_mb,bp_norm,rc_norm", &csv);
}
