//! Fig. 11: normalized execution time, BitPacker vs RNS-CKKS, on the
//! default 28-bit CraterLake, across the 10-benchmark matrix.
//!
//! The paper reports a gmean 59% speedup for BitPacker; this model
//! reproduces the shape (BitPacker faster on every workload, with larger
//! gains for the 35-bit-scale applications) at a smaller magnitude — see
//! EXPERIMENTS.md for the calibration discussion.

use bp_accel::AcceleratorConfig;
use bp_bench::{gmean, run_workload, write_csv};
use bp_ckks::{Representation, SecurityLevel};
use bp_workloads::WorkloadSpec;

fn main() {
    let cfg = AcceleratorConfig::craterlake();
    println!("Fig. 11 — execution time on 28-bit CraterLake (normalized to BitPacker)\n");
    println!(
        "{:<28} {:>10} {:>10} {:>12}",
        "workload", "BP (ms)", "R-C (ms)", "R-C (norm)"
    );
    let mut rows = Vec::new();
    let mut slowdowns = Vec::new();
    for spec in WorkloadSpec::all() {
        let bp = run_workload(
            &spec,
            Representation::BitPacker,
            &cfg,
            SecurityLevel::Bits128,
        );
        let rc = run_workload(&spec, Representation::RnsCkks, &cfg, SecurityLevel::Bits128);
        let norm = rc.ms / bp.ms;
        println!(
            "{:<28} {:>10.2} {:>10.2} {:>12.2}",
            spec.name(),
            bp.ms,
            rc.ms,
            norm
        );
        rows.push(format!(
            "{},{:.3},{:.3},{:.3}",
            spec.name(),
            bp.ms,
            rc.ms,
            norm
        ));
        slowdowns.push(norm);
    }
    let g = gmean(&slowdowns);
    println!("\ngmean RNS-CKKS slowdown: {g:.2}x  (paper: 1.59x, up to 3x)");
    rows.push(format!("gmean,,,{g:.3}"));
    write_csv(
        "fig11_exec_28bit.csv",
        "workload,bp_ms,rc_ms,rc_norm",
        &rows,
    );
}
