//! Fig. 10: energy breakdown of one homomorphic multiply vs residue count.
//!
//! 28-bit words, N = 2^16, R = 10..60: the CRB dominates (it grows
//! quadratically), NTT second, register file visible, elementwise small;
//! overall growth ≈ R^1.6.

use bp_accel::{compile, AcceleratorConfig, EnergyModel, FheOp, TraceContext};

fn main() {
    let cfg = AcceleratorConfig::craterlake();
    let model = EnergyModel::default();
    println!("Fig. 10 — HMult energy (mJ) vs residues R (28-bit words, N = 2^16)\n");
    println!(
        "{:>4} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "R", "RF", "NTT", "CRB", "Elemwise", "total"
    );
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for r in (10usize..=60).step_by(5) {
        let ctx = TraceContext {
            n: 1 << 16,
            dnum: 3,
            special: r.div_ceil(3),
        };
        let work = compile(&FheOp::HMult { r }, &ctx, cfg.word_bits, cfg.kshgen);
        let e = model.energy(&work, ctx.n, &cfg);
        println!(
            "{:>4} {:>8.3} {:>8.3} {:>8.3} {:>10.3} {:>8.3}",
            r,
            e.rf_mj,
            e.ntt_mj,
            e.crb_mj,
            e.elementwise_mj(),
            e.total_mj()
        );
        rows.push(format!(
            "{r},{:.4},{:.4},{:.4},{:.4},{:.4}",
            e.rf_mj,
            e.ntt_mj,
            e.crb_mj,
            e.elementwise_mj(),
            e.total_mj()
        ));
        series.push((r as f64, e.total_mj()));
    }
    // Empirical growth exponent over the measured range.
    let (r0, e0) = series[0];
    let (r1, e1) = *series.last().expect("nonempty");
    let exponent = (e1 / e0).ln() / (r1 / r0).ln();
    println!("\nempirical energy growth: R^{exponent:.2} (paper: ~R^1.6)");
    bp_bench::write_csv(
        "fig10_energy_breakdown.csv",
        "r,rf_mj,ntt_mj,crb_mj,elementwise_mj,total_mj",
        &rows,
    );
}
