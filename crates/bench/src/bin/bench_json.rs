//! Machine-readable CPU benchmark emitter.
//!
//! Times the hot evaluator operations (`ntt`, ciphertext
//! `mul + relinearize + rescale`, `rotate`, `adjust`) at N ∈ {4096, 8192}
//! and thread counts {1, 4}, and writes the medians to `BENCH_cpu.json` so
//! successive PRs have a perf trajectory to compare against. Run with
//! `--release`:
//!
//! ```text
//! cargo run --release -p bp-bench --bin bench_json [-- output.json] [--fast] [--enforce-scaling]
//! ```
//!
//! * `--fast` cuts the sample count (3 instead of 7) for smoke jobs where
//!   wall-clock matters more than noise floor.
//! * `--enforce-scaling` exits nonzero when any n=8192 op has
//!   `t4/t1 < 1.0` — i.e. when multithreading *lost* to sequential at the
//!   size where it must at least break even. Sub-1.0 ratios are always
//!   reported loudly on stderr, enforced or not.

use bp_bench::RunMeta;
use bp_ckks::{BpThreadPool, CkksContext, CkksParams, KeySet, Representation, SecurityLevel};
use bp_telemetry::json::Obj;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::sync::Arc;
use std::time::Instant;

const SAMPLES: usize = 7;
const FAST_SAMPLES: usize = 3;
const THREAD_CONFIGS: [usize; 2] = [1, 4];
/// `--enforce-scaling` fails the run when any op at this ring size has a
/// t4/t1 ratio below [`SCALING_FLOOR`].
const ENFORCED_N: usize = 8192;
const SCALING_FLOOR: f64 = 1.0;

struct Record {
    op: &'static str,
    n: usize,
    threads: usize,
    median_us: f64,
}

fn median_us(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

fn time_op<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    // One warm-up call outside measurement.
    f();
    let mut samples: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    median_us(&mut samples)
}

fn setup(log_n: u32, threads: usize) -> (CkksContext, KeySet) {
    let params = CkksParams::builder()
        .log_n(log_n)
        .word_bits(28)
        .representation(Representation::BitPacker)
        .security(SecurityLevel::Insecure)
        .levels(4, 40)
        .base_modulus_bits(50)
        .build()
        .expect("params");
    let ctx =
        CkksContext::with_threads(&params, Arc::new(BpThreadPool::new(threads))).expect("context");
    let mut rng = ChaCha20Rng::seed_from_u64(99);
    let mut keys = ctx.keygen(&mut rng);
    ctx.gen_rotation_keys(&mut keys, &[1], &mut rng);
    (ctx, keys)
}

fn main() {
    let mut out_path = "BENCH_cpu.json".to_string();
    let mut fast = false;
    let mut enforce_scaling = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--fast" => fast = true,
            "--enforce-scaling" => enforce_scaling = true,
            other if other.starts_with("--") => {
                eprintln!("[bench_json] unknown flag {other}");
                std::process::exit(2);
            }
            path => out_path = path.to_string(),
        }
    }
    let samples = if fast { FAST_SAMPLES } else { SAMPLES };
    let mut records: Vec<Record> = Vec::new();

    for log_n in [12u32, 13] {
        let n = 1usize << log_n;
        for threads in THREAD_CONFIGS {
            eprintln!("[bench_json] N = {n}, threads = {threads}");
            let (ctx, keys) = setup(log_n, threads);
            let mut rng = ChaCha20Rng::seed_from_u64(7);
            let vals: Vec<f64> = (0..ctx.params().slots())
                .map(|i| (i as f64).sin() / 2.0)
                .collect();
            let ct = ctx.encrypt(&ctx.encode(&vals, ctx.max_level()), &keys.public, &mut rng);
            let ev = ctx.evaluator();

            let mut ntt_poly = ct.c0().clone();
            records.push(Record {
                op: "ntt_roundtrip",
                n,
                threads,
                median_us: time_op(samples, || {
                    ntt_poly.to_coeff();
                    ntt_poly.to_ntt();
                }),
            });
            records.push(Record {
                op: "mul_relin_rescale",
                n,
                threads,
                median_us: time_op(samples, || {
                    let prod = ev.mul(&ct, &ct, &keys.evaluation).expect("aligned");
                    std::hint::black_box(ev.rescale(&prod).expect("levels left"));
                }),
            });
            records.push(Record {
                op: "rotate",
                n,
                threads,
                median_us: time_op(samples, || {
                    std::hint::black_box(ev.rotate(&ct, 1, &keys.evaluation).expect("key exists"));
                }),
            });
            records.push(Record {
                op: "adjust",
                n,
                threads,
                median_us: time_op(samples, || {
                    std::hint::black_box(
                        ev.adjust_to(&ct, ctx.max_level() - 1).expect("level > 0"),
                    );
                }),
            });
        }
    }

    let results: Vec<String> = records
        .iter()
        .map(|r| {
            Obj::new()
                .str("op", r.op)
                .u64("n", r.n as u64)
                .u64("threads", r.threads as u64)
                .f64("median_us", (r.median_us * 10.0).round() / 10.0)
                .build()
        })
        .collect();

    // threads=4 vs threads=1 speedup per (op, n) when both exist. Any
    // sub-1.0 ratio means the fan-out machinery cost more than it bought
    // — shout about it rather than burying it in the JSON, and fail the
    // run at the enforced size when --enforce-scaling is set.
    let mut speedups = Obj::new();
    let mut enforcement_failures = 0usize;
    for r in &records {
        if r.threads != 1 {
            continue;
        }
        if let Some(par) = records
            .iter()
            .find(|p| p.op == r.op && p.n == r.n && p.threads == 4)
        {
            let ratio = r.median_us / par.median_us;
            let key = format!("{}_n{}_t4_vs_t1", r.op, r.n);
            speedups = speedups.f64(&key, (ratio * 100.0).round() / 100.0);
            if ratio < 1.0 {
                eprintln!(
                    "[bench_json] WARNING: {} n={} t4/t1 = {:.2} < 1.0 \
                     (multithreading lost to sequential)",
                    r.op, r.n, ratio
                );
                if enforce_scaling && r.n == ENFORCED_N && ratio < SCALING_FLOOR {
                    enforcement_failures += 1;
                }
            }
        }
    }

    let json = RunMeta::collect("bitpacker-cpu-bench/v2")
        .header()
        .u64("samples_per_op", samples as u64)
        .arr("results", results)
        .raw("speedups", speedups.build())
        .build();

    std::fs::write(&out_path, &json).expect("write BENCH_cpu.json");
    println!("{json}");
    println!("[bench_json] wrote {out_path}");

    if enforcement_failures > 0 {
        eprintln!(
            "[bench_json] FAIL: {enforcement_failures} op(s) at n={ENFORCED_N} \
             scaled below {SCALING_FLOOR} with 4 threads"
        );
        std::process::exit(1);
    }
}
