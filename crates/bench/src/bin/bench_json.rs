//! Machine-readable CPU benchmark emitter.
//!
//! Times the hot evaluator operations (`ntt`, ciphertext
//! `mul + relinearize + rescale`, `rotate`, `adjust`) at N ∈ {4096, 8192}
//! and thread counts {1, 4}, and writes the medians to `BENCH_cpu.json` so
//! successive PRs have a perf trajectory to compare against. Run with
//! `--release`:
//!
//! ```text
//! cargo run --release -p bp-bench --bin bench_json [-- output.json]
//! ```

use bp_bench::RunMeta;
use bp_ckks::{BpThreadPool, CkksContext, CkksParams, KeySet, Representation, SecurityLevel};
use bp_telemetry::json::Obj;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::sync::Arc;
use std::time::Instant;

const SAMPLES: usize = 7;
const THREAD_CONFIGS: [usize; 2] = [1, 4];

struct Record {
    op: &'static str,
    n: usize,
    threads: usize,
    median_us: f64,
}

fn median_us(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    samples[samples.len() / 2]
}

fn time_op<F: FnMut()>(mut f: F) -> f64 {
    // One warm-up call outside measurement.
    f();
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    median_us(&mut samples)
}

fn setup(log_n: u32, threads: usize) -> (CkksContext, KeySet) {
    let params = CkksParams::builder()
        .log_n(log_n)
        .word_bits(28)
        .representation(Representation::BitPacker)
        .security(SecurityLevel::Insecure)
        .levels(4, 40)
        .base_modulus_bits(50)
        .build()
        .expect("params");
    let ctx =
        CkksContext::with_threads(&params, Arc::new(BpThreadPool::new(threads))).expect("context");
    let mut rng = ChaCha20Rng::seed_from_u64(99);
    let mut keys = ctx.keygen(&mut rng);
    ctx.gen_rotation_keys(&mut keys, &[1], &mut rng);
    (ctx, keys)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_cpu.json".to_string());
    let mut records: Vec<Record> = Vec::new();

    for log_n in [12u32, 13] {
        let n = 1usize << log_n;
        for threads in THREAD_CONFIGS {
            eprintln!("[bench_json] N = {n}, threads = {threads}");
            let (ctx, keys) = setup(log_n, threads);
            let mut rng = ChaCha20Rng::seed_from_u64(7);
            let vals: Vec<f64> = (0..ctx.params().slots())
                .map(|i| (i as f64).sin() / 2.0)
                .collect();
            let ct = ctx.encrypt(&ctx.encode(&vals, ctx.max_level()), &keys.public, &mut rng);
            let ev = ctx.evaluator();

            let mut ntt_poly = ct.c0().clone();
            records.push(Record {
                op: "ntt_roundtrip",
                n,
                threads,
                median_us: time_op(|| {
                    ntt_poly.to_coeff();
                    ntt_poly.to_ntt();
                }),
            });
            records.push(Record {
                op: "mul_relin_rescale",
                n,
                threads,
                median_us: time_op(|| {
                    let prod = ev.mul(&ct, &ct, &keys.evaluation).expect("aligned");
                    std::hint::black_box(ev.rescale(&prod).expect("levels left"));
                }),
            });
            records.push(Record {
                op: "rotate",
                n,
                threads,
                median_us: time_op(|| {
                    std::hint::black_box(ev.rotate(&ct, 1, &keys.evaluation).expect("key exists"));
                }),
            });
            records.push(Record {
                op: "adjust",
                n,
                threads,
                median_us: time_op(|| {
                    std::hint::black_box(
                        ev.adjust_to(&ct, ctx.max_level() - 1).expect("level > 0"),
                    );
                }),
            });
        }
    }

    let results: Vec<String> = records
        .iter()
        .map(|r| {
            Obj::new()
                .str("op", r.op)
                .u64("n", r.n as u64)
                .u64("threads", r.threads as u64)
                .f64("median_us", (r.median_us * 10.0).round() / 10.0)
                .build()
        })
        .collect();

    // threads=4 vs threads=1 speedup per (op, n) when both exist.
    let mut speedups = Obj::new();
    for r in &records {
        if r.threads != 1 {
            continue;
        }
        if let Some(par) = records
            .iter()
            .find(|p| p.op == r.op && p.n == r.n && p.threads == 4)
        {
            let key = format!("{}_n{}_t4_vs_t1", r.op, r.n);
            speedups = speedups.f64(&key, (r.median_us / par.median_us * 100.0).round() / 100.0);
        }
    }

    let json = RunMeta::collect("bitpacker-cpu-bench/v2")
        .header()
        .u64("samples_per_op", SAMPLES as u64)
        .arr("results", results)
        .raw("speedups", speedups.build())
        .build();

    std::fs::write(&out_path, &json).expect("write BENCH_cpu.json");
    println!("{json}");
    println!("[bench_json] wrote {out_path}");
}
