//! Sec. 6.3: BitPacker-tuned accelerator area, and the combined
//! energy-delay-area product (EDAP).
//!
//! Paper: BitPacker tolerates a 200 MB register file and a 28%-smaller CRB
//! with no performance loss, shrinking CraterLake from 472.3 mm² to
//! 395.5 mm² (a 19% reduction) and improving EDAP 3.0x over RNS-CKKS on
//! the original configuration.

use bp_accel::{area, AcceleratorConfig};
use bp_bench::{gmean, run_workload, write_csv};
use bp_ckks::{Representation, SecurityLevel};
use bp_workloads::WorkloadSpec;

fn main() {
    let original = AcceleratorConfig::craterlake();
    let tuned = area::bitpacker_tuned_craterlake();
    let a_orig = area::die_area(&original).total_mm2();
    let a_tuned = area::die_area(&tuned).total_mm2();

    println!("Sec. 6.3 — BitPacker-tuned CraterLake\n");
    println!("original:  {a_orig:>7.1} mm²  (256 MB RF, 56 CRB MACs/lane)");
    println!(
        "tuned:     {a_tuned:>7.1} mm²  (200 MB RF, {} CRB MACs/lane)",
        tuned.crb_macs_per_lane
    );
    println!(
        "reduction: {:>6.1}%   (paper: 472.3 -> 395.5 mm², \"19%\")\n",
        (a_orig / a_tuned - 1.0) * 100.0
    );

    // Performance of BitPacker on the tuned config vs RNS-CKKS on the
    // original; EDAP folds area in. The CRB shrink is sized to BitPacker's
    // lower R_max (paper Sec. 4.2: the CRB performs R_max multiply-adds per
    // input element), so it does not reduce BitPacker throughput — the
    // tuned machine keeps the original CRB rate and only the register-file
    // reduction is exposed to the performance model.
    let mut perf_cfg = tuned.clone();
    perf_cfg.crb_macs_per_lane = original.crb_macs_per_lane;
    let mut slow = Vec::new();
    let mut edap = Vec::new();
    let mut rows = Vec::new();
    for spec in WorkloadSpec::all() {
        let bp = run_workload(
            &spec,
            Representation::BitPacker,
            &perf_cfg,
            SecurityLevel::Bits128,
        );
        let rc = run_workload(
            &spec,
            Representation::RnsCkks,
            &original,
            SecurityLevel::Bits128,
        );
        let s = rc.ms / bp.ms;
        let ed = (rc.edp() * a_orig) / (bp.edp() * a_tuned);
        slow.push(s);
        edap.push(ed);
        rows.push(format!("{},{s:.3},{ed:.3}", spec.name()));
    }
    println!(
        "gmean speedup (BP on tuned vs R-C on original): {:.2}x",
        gmean(&slow)
    );
    println!("gmean EDAP improvement: {:.2}x (paper: 3.0x)", gmean(&edap));
    write_csv("sec63_area.csv", "workload,speedup,edap_gain", &rows);
}
