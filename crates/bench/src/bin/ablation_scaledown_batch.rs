//! Ablation (DESIGN.md Sec. 5): batched vs sequential multi-modulus
//! shedding in `scaleDown`.
//!
//! BitPacker sheds several moduli per level. Doing it in one CRB pass
//! (paper Listing 5 / Sec. 4.3) is almost as fast as shedding one modulus;
//! shedding sequentially (repeated Listing-1 rescales) pays the NTT cost
//! once per shed modulus. This is why BitPacker's level management is
//! *cheaper* than RNS-CKKS's at 28-bit words despite switching more moduli
//! (paper Fig. 12 discussion).

use bp_accel::{simulate, AcceleratorConfig, FheOp, TraceContext, TraceOp};
use bp_bench::write_csv;

fn main() {
    let cfg = AcceleratorConfig::craterlake();
    let ctx = TraceContext {
        n: 1 << 16,
        dnum: 3,
        special: 12,
    };
    println!("Ablation — batched (one CRB pass) vs sequential scale-down\n");
    println!(
        "{:>4} {:>6} {:>14} {:>14} {:>8}",
        "R", "shed", "batched (us)", "sequential", "ratio"
    );
    let mut rows = Vec::new();
    for r in [20usize, 35, 50] {
        for shed in [1usize, 2, 3, 4] {
            let run = |batched: bool| {
                simulate(
                    &[TraceOp {
                        op: FheOp::Rescale {
                            r,
                            shed,
                            added: if batched { 2 } else { 0 },
                            batched,
                        },
                        count: 100.0,
                    }],
                    &cfg,
                    &ctx,
                    0.0,
                )
                .ms * 10.0 // per-op microseconds (count = 100)
            };
            let (b, s) = (run(true), run(false));
            println!("{r:>4} {shed:>6} {b:>14.2} {s:>14.2} {:>8.2}", s / b);
            rows.push(format!("{r},{shed},{b:.3},{s:.3}"));
        }
    }
    println!("\nbatched shedding cost is nearly flat in the shed count; sequential");
    println!("shedding grows linearly (the paper's Sec. 4.3 claim)");
    write_csv(
        "ablation_scaledown_batch.csv",
        "r,shed,batched_us,sequential_us",
        &rows,
    );
}
