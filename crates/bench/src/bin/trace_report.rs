//! Telemetry trace reporter: runs an instrumented evaluator pipeline,
//! prints a per-op summary table, emits `TRACE_<workload>.json`, and
//! replays the trace through the accelerator model for a cycle estimate.
//!
//! Requires the `telemetry` feature (the binary exits with an error
//! otherwise):
//!
//! ```text
//! cargo run --release -p bp-bench --features telemetry --bin trace_report
//! cargo run --release -p bp-bench --features telemetry --bin trace_report -- --small
//! ```
//!
//! `--small` drops the ring degree to N=1024 for CI smoke runs; the
//! default is the paper-scale N=8192 mul+relin+rescale pipeline.
//! `--repairs` adds a per-op column counting ops performed by the
//! auto-align repair loop (rather than requested by the circuit) and
//! prints the drained repair/degrade/breaker event stream.
//! `--folded <path>` writes the hierarchical profiler's flamegraph-
//! compatible folded-stack output. An optional trailing argument
//! overrides the trace output path. When `BITPACKER_METRICS` is set the
//! Prometheus exposition (and the JSONL event tail) is flushed there on
//! exit.

use bp_accel::AcceleratorConfig;
use bp_bench::RunMeta;
use bp_ckks::telemetry::trace::{self, EvalTrace, OpKind, TRACE_SCHEMA};
use bp_ckks::telemetry::{self, counters, efficiency, events, export, profile, spans};
use bp_ckks::{CkksContext, CkksParams, Representation, SecurityLevel};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

const WORKLOAD: &str = "mul_relin_rescale";

/// Runs the mul+relin+rescale pipeline down the whole chain, with one
/// rotate+add per level so every hot path shows up in the trace.
fn run_pipeline(ctx: &CkksContext) -> Result<(), bp_ckks::EvalError> {
    let mut rng = ChaCha20Rng::seed_from_u64(7);
    let mut keys = ctx.keygen(&mut rng);
    ctx.gen_rotation_keys(&mut keys, &[1], &mut rng);
    let vals: Vec<f64> = (0..ctx.params().slots())
        .map(|i| (i as f64).sin() / 2.0)
        .collect();
    let mut ct = ctx.encrypt(&ctx.encode(&vals, ctx.max_level()), &keys.public, &mut rng);
    let ev = ctx.evaluator();
    while ct.level() > 0 {
        let prod = ev.mul(&ct, &ct, &keys.evaluation)?;
        let rot = ev.rotate(&prod, 1, &keys.evaluation)?;
        let sum = ev.add(&prod, &rot)?;
        ct = ev.rescale(&sum)?;
    }
    Ok(())
}

struct OpSummary {
    kind: OpKind,
    count: u64,
    total_ns: u64,
    noise_consumed: f64,
    repairs: u64,
    eff_sum: f64,
}

/// Aggregates the trace per op kind. "Noise consumed" is the growth in
/// the result's noise magnitude attributed to each op, i.e. the
/// noise-bits delta against the previous entry in program order (the
/// first entry is charged its full noise). `eff_sum` accumulates per-op
/// packing efficiency `log2 Q / (R·w)` for the mean-efficiency column.
fn summarize(tr: &EvalTrace) -> Vec<OpSummary> {
    let mut out: Vec<OpSummary> = Vec::new();
    let mut prev_noise = 0.0f64;
    for e in &tr.entries {
        let consumed = (e.op.noise_bits - prev_noise).max(0.0);
        prev_noise = e.op.noise_bits;
        let repair = u64::from(e.op.repair);
        let capacity = e.op.residues as f64 * f64::from(tr.meta.word_bits);
        let eff = if capacity > 0.0 {
            (e.op.log_q / capacity).clamp(0.0, 1.0)
        } else {
            0.0
        };
        match out.iter_mut().find(|s| s.kind == e.op.kind) {
            Some(s) => {
                s.count += 1;
                s.total_ns += e.op.duration_ns;
                s.noise_consumed += consumed;
                s.repairs += repair;
                s.eff_sum += eff;
            }
            None => out.push(OpSummary {
                kind: e.op.kind,
                count: 1,
                total_ns: e.op.duration_ns,
                noise_consumed: consumed,
                repairs: repair,
                eff_sum: eff,
            }),
        }
    }
    out.sort_by_key(|s| std::cmp::Reverse(s.total_ns));
    out
}

fn main() {
    let mut small = false;
    let mut show_repairs = false;
    let mut folded_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--small" => small = true,
            "--repairs" => show_repairs = true,
            "--folded" => match argv.next() {
                Some(p) => folded_path = Some(p),
                None => {
                    eprintln!("error: --folded needs a path");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
            other => out_path = Some(other.to_string()),
        }
    }
    let out_path = out_path.unwrap_or_else(|| format!("TRACE_{WORKLOAD}.json"));

    telemetry::set_enabled(true);
    if !telemetry::enabled() {
        eprintln!(
            "error: telemetry is compiled out — rebuild with \
             `--features telemetry`"
        );
        std::process::exit(2);
    }

    let log_n = if small { 10 } else { 13 };
    let params = CkksParams::builder()
        .log_n(log_n)
        .word_bits(28)
        .representation(Representation::BitPacker)
        .security(SecurityLevel::Insecure)
        .levels(4, 40)
        .base_modulus_bits(50)
        .build()
        .expect("params");
    let ctx = CkksContext::new(&params).expect("context");

    telemetry::reset();
    trace::set_meta(ctx.telemetry_meta(WORKLOAD));
    let wall = std::time::Instant::now();
    run_pipeline(&ctx).expect("pipeline");
    let wall_ns = wall.elapsed().as_nanos() as u64;
    let tr = trace::take();
    // Snapshots, not `take()`: the Prometheus flush at the end renders
    // the efficiency store, so it must stay populated.
    let eff_report = efficiency::snapshot();
    let tree = profile::snapshot();
    if tr.entries.is_empty() {
        eprintln!("error: pipeline recorded no trace entries");
        std::process::exit(2);
    }

    println!(
        "workload: {WORKLOAD} (N = {}, {} ops recorded)",
        params.n(),
        tr.entries.len()
    );
    println!();
    print!(
        "{:<10} {:>6} {:>12} {:>10} {:>10} {:>8} {:>6} {:>14}",
        "op", "count", "total ms", "excl ms", "mean us", "% wall", "eff", "noise (bits)"
    );
    if show_repairs {
        print!(" {:>8}", "repairs");
    }
    println!();
    for s in summarize(&tr) {
        // Evaluator ops frame at the top of the span tree, so the op name
        // is its own profile path; exclusive time is the op's cost net of
        // the kernels (NTT, base conversion, ...) it called into.
        let excl_ns = tree.get(s.kind.name()).map_or(0, |p| p.exclusive_ns);
        print!(
            "{:<10} {:>6} {:>12.3} {:>10.3} {:>10.1} {:>7.1}% {:>5.1}% {:>14.1}",
            s.kind.name(),
            s.count,
            s.total_ns as f64 / 1e6,
            excl_ns as f64 / 1e6,
            s.total_ns as f64 / 1e3 / s.count as f64,
            s.total_ns as f64 / wall_ns as f64 * 100.0,
            s.eff_sum / s.count as f64 * 100.0,
            s.noise_consumed,
        );
        if show_repairs {
            print!(" {:>8}", s.repairs);
        }
        println!();
    }
    if show_repairs {
        // Repairs also flow through the event stream interleaved with
        // runtime degradation/breaker activity; drain and summarize it.
        let evs = events::drain();
        let mut repairs = 0u64;
        let mut degrades = 0u64;
        let mut breaker_moves = 0u64;
        for ev in &evs {
            match ev {
                events::Event::Repair { .. } => repairs += 1,
                events::Event::Degrade { .. } => degrades += 1,
                events::Event::Breaker { .. } => breaker_moves += 1,
                events::Event::Op(_) => {}
            }
        }
        println!();
        println!(
            "repairs: {repairs} repair event(s), {degrades} degradation(s), \
             {breaker_moves} breaker transition(s), {} event(s) dropped",
            events::dropped()
        );
    }
    println!();
    println!("counters:");
    for c in counters::Counter::ALL {
        let v = counters::get(c);
        if v > 0 {
            println!("  {:<20} {v}", c.name());
        }
    }
    println!();
    println!("spans:");
    for s in spans::stats() {
        if s.count > 0 {
            println!(
                "  {:<14} count {:>6}  total {:>10.3} ms  mean {:>8.1} us",
                format!("{:?}", s.kind),
                s.count,
                s.total_ns as f64 / 1e6,
                s.mean_ns() / 1e3,
            );
        }
    }

    println!();
    println!("packing efficiency:");
    println!("{}", eff_report.render_table());

    println!();
    println!("cost attribution (span tree):");
    println!("{}", tree.render_table());

    if let Some(path) = &folded_path {
        std::fs::write(path, tree.folded()).expect("write folded profile");
        println!("[profile] wrote folded stacks to {path}");
    }

    // Emit the trace with the stable run-metadata header, then prove the
    // document round-trips before reporting success.
    let json = tr.write_into(RunMeta::collect(TRACE_SCHEMA).header());
    std::fs::write(&out_path, &json).expect("write trace JSON");
    let parsed = EvalTrace::from_json(&json).expect("emitted trace must re-parse");
    assert_eq!(parsed.entries.len(), tr.entries.len());
    println!();
    println!("[trace] wrote {out_path} ({} bytes)", json.len());

    let report = bp_accel::replay(&parsed, &AcceleratorConfig::craterlake(), 0.0)
        .expect("trace metadata is stamped");
    println!(
        "[replay] accelerator estimate: {:.0} cycles, {:.4} ms, {:.3} mJ",
        report.cycles,
        report.ms,
        report.energy.total_mj()
    );
    let occ = report.fu_occupancy();
    print!("[replay] FU occupancy:");
    for (fu, o) in bp_accel::FU_KINDS.iter().zip(occ) {
        print!(" {} {:.0}%", fu.name(), o * 100.0);
    }
    println!();

    // Flush the Prometheus exposition (and JSONL event tail) when
    // BITPACKER_METRICS points somewhere.
    match export::flush_to_env() {
        Ok(Some(dest)) => println!("[metrics] exposition flushed to {dest}"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: metrics flush failed: {e}");
            std::process::exit(2);
        }
    }
}
