//! Telemetry trace reporter: runs an instrumented evaluator pipeline,
//! prints a per-op summary table, emits `TRACE_<workload>.json`, and
//! replays the trace through the accelerator model for a cycle estimate.
//!
//! Requires the `telemetry` feature (the binary exits with an error
//! otherwise):
//!
//! ```text
//! cargo run --release -p bp-bench --features telemetry --bin trace_report
//! cargo run --release -p bp-bench --features telemetry --bin trace_report -- --small
//! ```
//!
//! `--small` drops the ring degree to N=1024 for CI smoke runs; the
//! default is the paper-scale N=8192 mul+relin+rescale pipeline.
//! `--repairs` adds a per-op column counting ops performed by the
//! auto-align repair loop (rather than requested by the circuit) and
//! prints the drained repair/degrade/breaker event stream. An optional
//! trailing argument overrides the output path.

use bp_accel::AcceleratorConfig;
use bp_bench::RunMeta;
use bp_ckks::telemetry::trace::{self, EvalTrace, OpKind, TRACE_SCHEMA};
use bp_ckks::telemetry::{self, counters, events, spans};
use bp_ckks::{CkksContext, CkksParams, Representation, SecurityLevel};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

const WORKLOAD: &str = "mul_relin_rescale";

/// Runs the mul+relin+rescale pipeline down the whole chain, with one
/// rotate+add per level so every hot path shows up in the trace.
fn run_pipeline(ctx: &CkksContext) -> Result<(), bp_ckks::EvalError> {
    let mut rng = ChaCha20Rng::seed_from_u64(7);
    let mut keys = ctx.keygen(&mut rng);
    ctx.gen_rotation_keys(&mut keys, &[1], &mut rng);
    let vals: Vec<f64> = (0..ctx.params().slots())
        .map(|i| (i as f64).sin() / 2.0)
        .collect();
    let mut ct = ctx.encrypt(&ctx.encode(&vals, ctx.max_level()), &keys.public, &mut rng);
    let ev = ctx.evaluator();
    while ct.level() > 0 {
        let prod = ev.mul(&ct, &ct, &keys.evaluation)?;
        let rot = ev.rotate(&prod, 1, &keys.evaluation)?;
        let sum = ev.add(&prod, &rot)?;
        ct = ev.rescale(&sum)?;
    }
    Ok(())
}

struct OpSummary {
    kind: OpKind,
    count: u64,
    total_ns: u64,
    noise_consumed: f64,
    repairs: u64,
}

/// Aggregates the trace per op kind. "Noise consumed" is the growth in
/// the result's noise magnitude attributed to each op, i.e. the
/// noise-bits delta against the previous entry in program order (the
/// first entry is charged its full noise).
fn summarize(tr: &EvalTrace) -> Vec<OpSummary> {
    let mut out: Vec<OpSummary> = Vec::new();
    let mut prev_noise = 0.0f64;
    for e in &tr.entries {
        let consumed = (e.op.noise_bits - prev_noise).max(0.0);
        prev_noise = e.op.noise_bits;
        let repair = u64::from(e.op.repair);
        match out.iter_mut().find(|s| s.kind == e.op.kind) {
            Some(s) => {
                s.count += 1;
                s.total_ns += e.op.duration_ns;
                s.noise_consumed += consumed;
                s.repairs += repair;
            }
            None => out.push(OpSummary {
                kind: e.op.kind,
                count: 1,
                total_ns: e.op.duration_ns,
                noise_consumed: consumed,
                repairs: repair,
            }),
        }
    }
    out.sort_by_key(|s| std::cmp::Reverse(s.total_ns));
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let show_repairs = args.iter().any(|a| a == "--repairs");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| format!("TRACE_{WORKLOAD}.json"));

    telemetry::set_enabled(true);
    if !telemetry::enabled() {
        eprintln!(
            "error: telemetry is compiled out — rebuild with \
             `--features telemetry`"
        );
        std::process::exit(2);
    }

    let log_n = if small { 10 } else { 13 };
    let params = CkksParams::builder()
        .log_n(log_n)
        .word_bits(28)
        .representation(Representation::BitPacker)
        .security(SecurityLevel::Insecure)
        .levels(4, 40)
        .base_modulus_bits(50)
        .build()
        .expect("params");
    let ctx = CkksContext::new(&params).expect("context");

    telemetry::reset();
    trace::set_meta(ctx.telemetry_meta(WORKLOAD));
    let wall = std::time::Instant::now();
    run_pipeline(&ctx).expect("pipeline");
    let wall_ns = wall.elapsed().as_nanos() as u64;
    let tr = trace::take();
    if tr.entries.is_empty() {
        eprintln!("error: pipeline recorded no trace entries");
        std::process::exit(2);
    }

    println!(
        "workload: {WORKLOAD} (N = {}, {} ops recorded)",
        params.n(),
        tr.entries.len()
    );
    println!();
    print!(
        "{:<10} {:>6} {:>12} {:>10} {:>8} {:>14}",
        "op", "count", "total ms", "mean us", "% wall", "noise (bits)"
    );
    if show_repairs {
        print!(" {:>8}", "repairs");
    }
    println!();
    for s in summarize(&tr) {
        print!(
            "{:<10} {:>6} {:>12.3} {:>10.1} {:>7.1}% {:>14.1}",
            s.kind.name(),
            s.count,
            s.total_ns as f64 / 1e6,
            s.total_ns as f64 / 1e3 / s.count as f64,
            s.total_ns as f64 / wall_ns as f64 * 100.0,
            s.noise_consumed,
        );
        if show_repairs {
            print!(" {:>8}", s.repairs);
        }
        println!();
    }
    if show_repairs {
        // Repairs also flow through the event stream interleaved with
        // runtime degradation/breaker activity; drain and summarize it.
        let evs = events::drain();
        let mut repairs = 0u64;
        let mut degrades = 0u64;
        let mut breaker_moves = 0u64;
        for ev in &evs {
            match ev {
                events::Event::Repair { .. } => repairs += 1,
                events::Event::Degrade { .. } => degrades += 1,
                events::Event::Breaker { .. } => breaker_moves += 1,
                events::Event::Op(_) => {}
            }
        }
        println!();
        println!(
            "repairs: {repairs} repair event(s), {degrades} degradation(s), \
             {breaker_moves} breaker transition(s), {} event(s) dropped",
            events::dropped()
        );
    }
    println!();
    println!("counters:");
    for c in counters::Counter::ALL {
        let v = counters::get(c);
        if v > 0 {
            println!("  {:<20} {v}", c.name());
        }
    }
    println!();
    println!("spans:");
    for s in spans::stats() {
        if s.count > 0 {
            println!(
                "  {:<14} count {:>6}  total {:>10.3} ms  mean {:>8.1} us",
                format!("{:?}", s.kind),
                s.count,
                s.total_ns as f64 / 1e6,
                s.mean_ns() / 1e3,
            );
        }
    }

    // Emit the trace with the stable run-metadata header, then prove the
    // document round-trips before reporting success.
    let json = tr.write_into(RunMeta::collect(TRACE_SCHEMA).header());
    std::fs::write(&out_path, &json).expect("write trace JSON");
    let parsed = EvalTrace::from_json(&json).expect("emitted trace must re-parse");
    assert_eq!(parsed.entries.len(), tr.entries.len());
    println!();
    println!("[trace] wrote {out_path} ({} bytes)", json.len());

    let report = bp_accel::replay(&parsed, &AcceleratorConfig::craterlake(), 0.0)
        .expect("trace metadata is stamped");
    println!(
        "[replay] accelerator estimate: {:.0} cycles, {:.4} ms, {:.3} mJ",
        report.cycles,
        report.ms,
        report.energy.total_mj()
    );
}
