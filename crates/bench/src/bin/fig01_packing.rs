//! Fig. 1 / Figs. 4–5: the packing example.
//!
//! A ciphertext with a 240-bit modulus (six 40-bit-scale levels) on 64-bit
//! hardware words: RNS-CKKS stores it in 6 words (60% overhead), BitPacker
//! in 4 (3 word-sized non-terminals + one ~48-bit terminal, 6.6% overhead).

use bp_ckks::{CkksParams, ModulusChain, Representation, SecurityLevel};

fn main() {
    println!("Fig. 1 — packing a 240-bit, 6-level ciphertext into 64-bit words\n");
    println!(
        "{:<10} {:>6} {:>9} {:>10} {:>9}",
        "scheme", "words", "logQ", "info bits", "overhead"
    );
    let mut rows = Vec::new();
    for repr in [Representation::RnsCkks, Representation::BitPacker] {
        let params = CkksParams::builder()
            .log_n(12)
            .word_bits(64)
            .representation(repr)
            .security(SecurityLevel::Insecure)
            .scale_schedule(vec![40; 6])
            .base_modulus_bits(40)
            .build()
            .expect("params");
        let chain = ModulusChain::new(&params).expect("chain");
        let top = chain.max_level();
        let words = chain.residue_count_at(top);
        let logq = chain.log_q_at(top);
        // Fig. 1 defines overhead relative to the information content:
        // (storage bits − information bits) / information bits.
        let storage = words as f64 * 64.0;
        let overhead = (storage - logq) / logq;
        println!(
            "{:<10} {:>6} {:>9.1} {:>10} {:>8.1}%",
            repr.to_string(),
            words,
            logq,
            240,
            overhead * 100.0
        );
        println!(
            "  moduli (bits): {:?}",
            chain
                .moduli_at(top)
                .iter()
                .map(|&q| format!("{:.1}", (q as f64).log2()))
                .collect::<Vec<_>>()
        );
        rows.push(format!("{repr},{words},{logq:.1},{:.3}", overhead));
    }
    println!("\npaper: RNS-CKKS 6 words (60% overhead), BitPacker 4 words (6.6%)");
    bp_bench::write_csv("fig01_packing.csv", "scheme,words,logq,overhead", &rows);
}
