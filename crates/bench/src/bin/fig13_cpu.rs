//! Fig. 13: CPU execution time of the real library, BitPacker vs RNS-CKKS.
//!
//! The paper implements a single-threaded Rust FHE library (this workspace
//! *is* that library) and reports BitPacker gmean 24% faster at 64-bit CPU
//! words. We run an app-flavored op mix per level through the actual
//! evaluator. Software moduli cap at 61 bits (DESIGN.md substitution:
//! changes packing by < 5%); the level-management share is reported like
//! the paper's red bars.
//!
//! Run with `--release`; debug timings are meaningless.

use bp_bench::{gmean, write_csv};
use bp_ckks::{CkksContext, CkksParams, Representation, SecurityLevel};
use bp_workloads::{App, WorkloadSpec};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::time::Instant;

const WORD_BITS: u32 = 61;
const LOG_N: u32 = 12;
const LEVELS: usize = 8;

fn run_cpu(app: App, repr: Representation) -> (f64, f64) {
    let params = CkksParams::builder()
        .log_n(LOG_N)
        .word_bits(WORD_BITS)
        .representation(repr)
        .security(SecurityLevel::Insecure)
        .levels(LEVELS, app.scale_bits())
        .base_modulus_bits(app.scale_bits() + 15)
        .dnum(3)
        .build()
        .expect("params");
    let ctx = CkksContext::new(&params).expect("context");
    let mut rng = ChaCha20Rng::seed_from_u64(0xF13);
    let mut keys = ctx.keygen(&mut rng);
    ctx.gen_rotation_keys(&mut keys, &[1], &mut rng);
    let ev = ctx.evaluator();

    let slots = ctx.params().slots();
    let vals: Vec<f64> = (0..slots)
        .map(|i| (i as f64 / slots as f64) - 0.5)
        .collect();
    let mut ct = ctx.encrypt(&ctx.encode(&vals, ctx.max_level()), &keys.public, &mut rng);

    let mix = app.op_mix();
    let scale_ops = |x: f64| (x / 16.0).ceil() as usize;

    let mut total = 0.0f64;
    let mut lvl_mgmt = 0.0f64;
    while ct.level() > 0 {
        let t0 = Instant::now();
        for _ in 0..scale_ops(mix.hrotate) {
            ct = ev
                .rotate(&ct, 1, &keys.evaluation)
                .expect("rotation key present");
        }
        for _ in 0..scale_ops(mix.hadd) {
            let c2 = ct.clone();
            ct = ev.add(&ct, &c2).expect("identical operands");
        }
        let half = ctx.encode_at_scale(
            &vec![0.5; slots],
            ct.level(),
            ctx.chain().scale_at(ct.level()).clone(),
        );
        for _ in 0..scale_ops(mix.pmult).saturating_sub(1) {
            let _ = ev.mul_plain(&ct, &half);
        }
        let prod = ev.mul(&ct, &ct, &keys.evaluation).expect("aligned");
        total += t0.elapsed().as_secs_f64();

        // Level management, timed separately (the paper's red bars).
        let t1 = Instant::now();
        ct = ev.rescale(&prod).expect("level available");
        let lm = t1.elapsed().as_secs_f64();
        lvl_mgmt += lm;
        total += lm;
    }
    (total * 1e3, lvl_mgmt * 1e3)
}

fn main() {
    println!("Fig. 13 — CPU execution time, real library (N = 2^{LOG_N}, {WORD_BITS}-bit words)\n");
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "app", "BP (ms)", "BP lvl%", "RC (ms)", "RC lvl%", "speedup"
    );
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for spec in WorkloadSpec::all().into_iter().take(5) {
        let app = spec.app;
        let (bp_ms, bp_lvl) = run_cpu(app, Representation::BitPacker);
        let (rc_ms, rc_lvl) = run_cpu(app, Representation::RnsCkks);
        let speedup = rc_ms / bp_ms;
        println!(
            "{:<18} {:>10.1} {:>9.1}% {:>10.1} {:>9.1}% {:>9.2}",
            app.name(),
            bp_ms,
            bp_lvl / bp_ms * 100.0,
            rc_ms,
            rc_lvl / rc_ms * 100.0,
            speedup
        );
        rows.push(format!("{},{bp_ms:.2},{rc_ms:.2},{speedup:.3}", app.name()));
        speedups.push(speedup);
    }
    println!(
        "\ngmean CPU speedup: {:.2}x (paper: 1.24x on a Zen 2 CPU)",
        gmean(&speedups)
    );
    write_csv("fig13_cpu.csv", "app,bp_ms,rc_ms,speedup", &rows);
}
