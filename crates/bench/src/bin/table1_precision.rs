//! Table 1: error-free mantissa bits per benchmark, mean and worst-case.
//!
//! Functional proxy applications (DESIGN.md substitution #4) run on the
//! real library: BitPacker at 28-bit words (the most restrictive choice),
//! RNS-CKKS at wide words (its best). The paper's finding: BitPacker
//! matches RNS-CKKS within ~1 bit on every benchmark.
//!
//! Run with `--release`.

use bp_bench::write_csv;
use bp_ckks::Representation;
use bp_workloads::functional::run_proxy;
use bp_workloads::App;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

const LOG_N: u32 = 10;
const LEVELS: usize = 10;
const SAMPLES: usize = 4;

fn main() {
    println!("Table 1 — error-free mantissa bits (mean / worst-case)\n");
    println!(
        "{:<18} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "BP mean", "RC mean", "BP worst", "RC worst"
    );
    let mut rows = Vec::new();
    let mut total_repairs = 0u64;
    for app in App::ALL {
        let mut acc = [[0.0f64; 2]; 2]; // [scheme][mean/worst]
        let mut worst = [f64::INFINITY; 2];
        for (i, repr) in [Representation::BitPacker, Representation::RnsCkks]
            .into_iter()
            .enumerate()
        {
            for s in 0..SAMPLES {
                let mut rng = ChaCha20Rng::seed_from_u64(0x7AB1E + s as u64);
                let rep = run_proxy(app, repr, LOG_N, LEVELS, &mut rng);
                acc[i][0] += rep.mean_bits / SAMPLES as f64;
                acc[i][1] += rep.worst_bits / SAMPLES as f64;
                worst[i] = worst[i].min(rep.worst_bits);
                total_repairs += rep.repairs;
            }
        }
        println!(
            "{:<18} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            app.name(),
            acc[0][0],
            acc[1][0],
            worst[0],
            worst[1]
        );
        rows.push(format!(
            "{},{:.2},{:.2},{:.2},{:.2}",
            app.name(),
            acc[0][0],
            acc[1][0],
            worst[0],
            worst[1]
        ));
    }
    // Repair summary: the proxies run under EvalPolicy::Strict with
    // hand-aligned circuits, so any nonzero count flags a regression.
    println!("\nevaluator repair summary: {total_repairs} automatic alignments (expect 0 in strict mode)");
    println!("\npaper: BitPacker matches RNS-CKKS within ~1 bit on every benchmark");
    println!("(absolute bit counts differ from the paper's — the proxies are");
    println!(" synthetic-data stand-ins for the trained networks; see DESIGN.md)");
    write_csv(
        "table1_precision.csv",
        "benchmark,bp_mean_bits,rc_mean_bits,bp_worst_bits,rc_worst_bits",
        &rows,
    );
}
