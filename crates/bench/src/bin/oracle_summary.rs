//! Conformance-oracle summary: differential-fuzz coverage per word size.
//!
//! Runs a fixed block of seeded oracle programs at every supported word
//! size (BitPacker vs RNS-CKKS vs exact plaintext reference, wire
//! round-trip at every node) and reports coverage — programs, nodes, op
//! mix — alongside the divergence count, which must be zero on a healthy
//! tree. A per-word CSV row lands in `results/oracle_summary.csv`.
//!
//! Usage: `oracle_summary [--seeds N]` (default 100 per word size).

use std::time::Instant;

use bp_bench::write_csv;
use bp_oracle::{generate, run_program, OracleEnv, WORD_LABELS};
use bp_telemetry::trace::OpKind;

fn main() {
    let mut seeds = 100u64;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--seeds" => {
                seeds = argv.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seeds needs an integer");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?} (usage: oracle_summary [--seeds N])");
                std::process::exit(2);
            }
        }
    }

    println!("Conformance oracle — {seeds} programs per word size\n");
    println!(
        "{:<6} {:>9} {:>8} {:>7} {:>9} {:>11} {:>9}",
        "word", "programs", "nodes", "muls", "rescales", "divergences", "ms"
    );
    let mut rows = Vec::new();
    let mut total_divergences = 0usize;
    for &label in &WORD_LABELS {
        let env = OracleEnv::new(label).expect("oracle environment");
        let start = Instant::now();
        let (mut nodes, mut muls, mut rescales, mut divergences) = (0usize, 0, 0, 0);
        for seed in 0..seeds {
            let program = generate(seed, label, env.limits);
            nodes += program.num_nodes();
            for op in &program.ops {
                match op.kind() {
                    OpKind::Mul | OpKind::Square | OpKind::MulPlain => muls += 1,
                    OpKind::Rescale | OpKind::Adjust => rescales += 1,
                    _ => {}
                }
            }
            if let Some(d) = run_program(&env, &program) {
                divergences += 1;
                eprintln!("DIVERGENCE w{label} seed {seed}: {d}");
            }
        }
        let ms = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{label:<6} {seeds:>9} {nodes:>8} {muls:>7} {rescales:>9} {divergences:>11} {ms:>9.0}"
        );
        rows.push(format!(
            "{label},{seeds},{nodes},{muls},{rescales},{divergences},{ms:.1}"
        ));
        total_divergences += divergences;
    }
    if let Some(path) = write_csv(
        "oracle_summary.csv",
        "word_bits,programs,nodes,muls,rescales,divergences,ms",
        &rows,
    ) {
        println!("\nwrote {}", path.display());
    }
    if total_divergences > 0 {
        eprintln!("\n{total_divergences} divergences — backends disagree, investigate!");
        std::process::exit(1);
    }
    println!("all programs agree across both backends and the reference");
}
