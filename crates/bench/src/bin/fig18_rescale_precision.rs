//! Fig. 18: error distribution of the rescale operation across scales.
//!
//! Methodology follows the paper (after Kim et al.): encrypt values uniform
//! in [-1, 1], square and rescale, and measure the distribution of
//! error-free mantissa bits (−log₂ error), for scales 30–60 bits.
//! BitPacker runs at 28-bit words (its most restrictive choice), RNS-CKKS
//! at wide words (its best). The paper finds the distributions differ by
//! less than the 0.5-bit moduli-matching margin.
//!
//! Run with `--release`.

use bp_bench::{box_stats, write_csv};
use bp_ckks::{CkksContext, CkksParams, Representation, SecurityLevel};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

const LOG_N: u32 = 11;
const LEVELS: usize = 10;
const CTS_PER_SCALE: usize = 8;

fn ctx_for(repr: Representation, scale_bits: u32) -> CkksContext {
    let word_bits = match repr {
        Representation::BitPacker => 28,
        Representation::RnsCkks => 61,
    };
    let params = CkksParams::builder()
        .log_n(LOG_N)
        .word_bits(word_bits)
        .representation(repr)
        .security(SecurityLevel::Insecure)
        .levels(LEVELS, scale_bits)
        .base_modulus_bits(scale_bits.max(40) + 10)
        .build()
        .expect("params");
    CkksContext::new(&params).expect("context")
}

fn precision_bits(repr: Representation, scale_bits: u32, seed: u64) -> Vec<f64> {
    let ctx = ctx_for(repr, scale_bits);
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    let keys = ctx.keygen(&mut rng);
    let ev = ctx.evaluator();
    let slots = ctx.params().slots();
    let mut bits = Vec::with_capacity(CTS_PER_SCALE * slots);
    for _ in 0..CTS_PER_SCALE {
        let vals: Vec<f64> = (0..slots).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let ct = ctx.encrypt(&ctx.encode(&vals, ctx.max_level()), &keys.public, &mut rng);
        let sq = ev
            .rescale(&ev.mul(&ct, &ct, &keys.evaluation).expect("aligned"))
            .expect("level available");
        let got = ctx
            .decrypt_to_values(&sq, &keys.secret, slots)
            .expect("budget positive");
        for (g, v) in got.iter().zip(&vals) {
            let err = (g - v * v).abs().max(1e-18);
            bits.push(-err.log2());
        }
    }
    bits
}

fn main() {
    println!("Fig. 18 — rescale precision distribution (error-free mantissa bits)\n");
    println!(
        "{:>6} {:<10} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "scale", "scheme", "min", "q1", "median", "q3", "max"
    );
    let mut rows = Vec::new();
    for scale in [30u32, 35, 40, 45, 50, 55, 60] {
        for repr in [Representation::BitPacker, Representation::RnsCkks] {
            let mut bits = precision_bits(repr, scale, 0x18 + scale as u64);
            let b = box_stats(&mut bits);
            println!(
                "{scale:>6} {:<10} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
                repr.to_string(),
                b.min,
                b.q1,
                b.median,
                b.q3,
                b.max
            );
            rows.push(format!(
                "{scale},{repr},{:.2},{:.2},{:.2},{:.2},{:.2}",
                b.min, b.q1, b.median, b.q3, b.max
            ));
        }
    }
    println!("\npaper: BitPacker(28-bit) and RNS-CKKS(64-bit) distributions differ");
    println!("by less than the 0.5-bit moduli-selection margin at every scale");
    write_csv(
        "fig18_rescale_precision.csv",
        "scale_bits,scheme,min,q1,median,q3,max",
        &rows,
    );
}
