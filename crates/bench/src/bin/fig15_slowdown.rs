//! Fig. 15: gmean / max / min RNS-CKKS slowdown vs BitPacker across word
//! sizes, plus the Sec. 6.2 SHARP comparison (BitPacker at 28-bit words vs
//! the SHARP-like 36-bit RNS-CKKS design).
//!
//! Paper anchors: gmean 1.59x at 28 bits, 2.18x at 64 bits (ARK-like);
//! BitPacker@28 is 43% faster than SHARP-like with 2.2x better EDP.

use bp_accel::AcceleratorConfig;
use bp_bench::{gmean, run_workload, write_csv, WORD_SIZES};
use bp_ckks::{Representation, SecurityLevel};
use bp_workloads::WorkloadSpec;

fn main() {
    let base = AcceleratorConfig::craterlake();
    println!("Fig. 15 — RNS-CKKS slowdown vs BitPacker across word sizes\n");
    println!("{:>4} {:>8} {:>8} {:>8}", "w", "min", "gmean", "max");
    let mut rows = Vec::new();
    let mut bp28: Vec<f64> = Vec::new();
    let mut bp28_edp: Vec<f64> = Vec::new();
    let mut sharp: Vec<f64> = Vec::new();
    let mut sharp_edp: Vec<f64> = Vec::new();
    for w in WORD_SIZES {
        let cfg = base.with_word_bits(w);
        let mut slowdowns = Vec::new();
        for spec in WorkloadSpec::all() {
            let bp = run_workload(
                &spec,
                Representation::BitPacker,
                &cfg,
                SecurityLevel::Bits128,
            );
            let rc = run_workload(&spec, Representation::RnsCkks, &cfg, SecurityLevel::Bits128);
            slowdowns.push(rc.ms / bp.ms);
            if w == 28 {
                bp28.push(bp.ms);
                bp28_edp.push(bp.edp());
            }
            if w == 36 {
                sharp.push(rc.ms);
                sharp_edp.push(rc.edp());
            }
        }
        let (mn, g, mx) = (
            slowdowns.iter().cloned().fold(f64::INFINITY, f64::min),
            gmean(&slowdowns),
            slowdowns.iter().cloned().fold(0.0, f64::max),
        );
        println!("{w:>4} {mn:>8.2} {g:>8.2} {mx:>8.2}");
        rows.push(format!("{w},{mn:.3},{g:.3},{mx:.3}"));
    }
    // SHARP comparison (Sec. 6.2).
    let speedup: Vec<f64> = sharp.iter().zip(&bp28).map(|(s, b)| s / b).collect();
    let edp: Vec<f64> = sharp_edp
        .iter()
        .zip(&bp28_edp)
        .map(|(s, b)| s / b)
        .collect();
    println!(
        "\nSec. 6.2 — BitPacker@28-bit vs SHARP-like (36-bit RNS-CKKS):\n  \
         gmean speedup {:.2}x (paper: 1.43x), gmean EDP gain {:.2}x (paper: 2.2x)",
        gmean(&speedup),
        gmean(&edp)
    );
    write_csv("fig15_slowdown.csv", "word_bits,min,gmean,max", &rows);
}
