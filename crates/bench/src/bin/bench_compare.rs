//! CI perf-regression gate: diffs two `bitpacker-cpu-bench/v2`
//! documents and fails (exit 1) when any matched `(op, n, threads)`
//! series regressed beyond its noise threshold.
//!
//! ```text
//! bench_compare <baseline.json> <candidate.json>
//!     [--threshold <frac>]       # default regression threshold (0.30)
//!     [--threshold-op op=frac]   # per-op override, repeatable
//!     [--abs-floor-us <us>]      # ignore deltas below this (default 150)
//! ```
//!
//! A series regresses when the candidate median is slower than the
//! baseline by more than `threshold` *and* by more than the absolute
//! floor — the floor keeps microsecond-scale ops from tripping the gate
//! on scheduler noise. Per-op thresholds let inherently noisier kernels
//! (e.g. `adjust`, whose medians are small) carry wider bands. Large
//! *improvements* are reported as stale-baseline warnings but never
//! fail the gate. A `cores` mismatch between the two headers widens
//! every threshold 2× and warns, since cross-machine medians are only
//! weakly comparable.

use bp_telemetry::json::Json;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Default fractional slowdown tolerated before a series counts as a
/// regression.
const DEFAULT_THRESHOLD: f64 = 0.30;
/// Default absolute slowdown floor in microseconds.
const DEFAULT_ABS_FLOOR_US: f64 = 150.0;
/// Improvements beyond this fraction are flagged as a stale baseline.
const STALE_IMPROVEMENT: f64 = 0.40;

struct Series {
    op: String,
    n: u64,
    threads: u64,
    median_us: f64,
}

struct BenchDoc {
    cores: u64,
    series: Vec<Series>,
}

fn load(path: &str) -> Result<BenchDoc, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}: missing schema"))?;
    if !schema.starts_with("bitpacker-cpu-bench/") {
        return Err(format!("{path}: not a cpu-bench document ({schema})"));
    }
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{path}: missing results array"))?;
    let mut series = Vec::with_capacity(results.len());
    for (i, r) in results.iter().enumerate() {
        let get_u64 = |k: &str| {
            r.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}: results[{i}].{k} missing"))
        };
        series.push(Series {
            op: r
                .get("op")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{path}: results[{i}].op missing"))?
                .to_string(),
            n: get_u64("n")?,
            threads: get_u64("threads")?,
            median_us: r
                .get("median_us")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{path}: results[{i}].median_us missing"))?,
        });
    }
    Ok(BenchDoc {
        cores: doc.get("cores").and_then(Json::as_u64).unwrap_or(0),
        series,
    })
}

struct Args {
    baseline: String,
    candidate: String,
    threshold: f64,
    per_op: BTreeMap<String, f64>,
    abs_floor_us: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;
    let mut per_op = BTreeMap::new();
    let mut abs_floor_us = DEFAULT_ABS_FLOOR_US;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = argv.next().ok_or("--threshold needs a value")?;
                threshold = v.parse().map_err(|_| format!("bad threshold: {v}"))?;
            }
            "--threshold-op" => {
                let v = argv.next().ok_or("--threshold-op needs op=frac")?;
                let (op, frac) = v.split_once('=').ok_or(format!("bad override: {v}"))?;
                per_op.insert(
                    op.to_string(),
                    frac.parse().map_err(|_| format!("bad override: {v}"))?,
                );
            }
            "--abs-floor-us" => {
                let v = argv.next().ok_or("--abs-floor-us needs a value")?;
                abs_floor_us = v.parse().map_err(|_| format!("bad floor: {v}"))?;
            }
            other if other.starts_with("--") => return Err(format!("unknown flag: {other}")),
            other => positional.push(other.to_string()),
        }
    }
    if positional.len() != 2 {
        return Err("usage: bench_compare <baseline.json> <candidate.json> \
                    [--threshold f] [--threshold-op op=f] [--abs-floor-us us]"
            .to_string());
    }
    Ok(Args {
        baseline: positional.remove(0),
        candidate: positional.remove(0),
        threshold,
        per_op,
        abs_floor_us,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };
    let (base, cand) = match (load(&args.baseline), load(&args.candidate)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for e in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_compare: {e}");
            }
            return ExitCode::from(2);
        }
    };

    let mut machine_factor = 1.0;
    if base.cores != cand.cores && base.cores != 0 && cand.cores != 0 {
        eprintln!(
            "WARNING: cores mismatch (baseline {} vs candidate {}); \
             widening every threshold 2x",
            base.cores, cand.cores
        );
        machine_factor = 2.0;
    }

    let candidates: BTreeMap<(String, u64, u64), f64> = cand
        .series
        .iter()
        .map(|s| ((s.op.clone(), s.n, s.threads), s.median_us))
        .collect();

    println!(
        "{:<20} {:>6} {:>4} {:>12} {:>12} {:>8} {:>7}  verdict",
        "op", "n", "thr", "base us", "cand us", "ratio", "thresh"
    );
    let mut regressions = 0usize;
    let mut stale = 0usize;
    let mut matched = 0usize;
    for s in &base.series {
        let key = (s.op.clone(), s.n, s.threads);
        let Some(&cand_us) = candidates.get(&key) else {
            println!(
                "{:<20} {:>6} {:>4} {:>12.1} {:>12} {:>8} {:>7}  MISSING",
                s.op, s.n, s.threads, s.median_us, "-", "-", "-"
            );
            continue;
        };
        matched += 1;
        let threshold = args.per_op.get(&s.op).copied().unwrap_or(args.threshold) * machine_factor;
        let ratio = if s.median_us > 0.0 {
            cand_us / s.median_us
        } else {
            1.0
        };
        let delta_us = cand_us - s.median_us;
        let verdict = if ratio > 1.0 + threshold && delta_us > args.abs_floor_us {
            regressions += 1;
            "REGRESSION"
        } else if ratio < 1.0 - STALE_IMPROVEMENT && -delta_us > args.abs_floor_us {
            stale += 1;
            "improved (stale baseline?)"
        } else {
            "ok"
        };
        println!(
            "{:<20} {:>6} {:>4} {:>12.1} {:>12.1} {:>8.3} {:>6.0}%  {verdict}",
            s.op,
            s.n,
            s.threads,
            s.median_us,
            cand_us,
            ratio,
            threshold * 100.0,
        );
    }
    if matched == 0 {
        eprintln!("bench_compare: no overlapping (op, n, threads) series");
        return ExitCode::from(2);
    }
    if stale > 0 {
        eprintln!(
            "note: {stale} series improved >{:.0}% — consider regenerating the baseline",
            STALE_IMPROVEMENT * 100.0
        );
    }
    if regressions > 0 {
        eprintln!("bench_compare: {regressions} regression(s) beyond threshold");
        return ExitCode::FAILURE;
    }
    println!("bench_compare: {matched} series compared, no regressions");
    ExitCode::SUCCESS
}
