//! Fig. 19: error distribution of the adjust operation across scales.
//!
//! Same methodology as Fig. 18 but for adjust: encrypt uniform values,
//! adjust down one level (which multiplies by the rounded constant `K` and
//! rescales; Listings 2 / 6), and measure error against the unchanged
//! values. Starting level 10, scales 30–60 bits.
//!
//! Run with `--release`.

use bp_bench::{box_stats, write_csv};
use bp_ckks::{CkksContext, CkksParams, Representation, SecurityLevel};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

const LOG_N: u32 = 11;
const LEVELS: usize = 10;
const CTS_PER_SCALE: usize = 8;

fn ctx_for(repr: Representation, scale_bits: u32) -> CkksContext {
    let word_bits = match repr {
        Representation::BitPacker => 28,
        Representation::RnsCkks => 61,
    };
    let params = CkksParams::builder()
        .log_n(LOG_N)
        .word_bits(word_bits)
        .representation(repr)
        .security(SecurityLevel::Insecure)
        .levels(LEVELS, scale_bits)
        .base_modulus_bits(scale_bits.max(40) + 10)
        .build()
        .expect("params");
    CkksContext::new(&params).expect("context")
}

fn adjust_precision_bits(repr: Representation, scale_bits: u32, seed: u64) -> Vec<f64> {
    let ctx = ctx_for(repr, scale_bits);
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    let keys = ctx.keygen(&mut rng);
    let ev = ctx.evaluator();
    let slots = ctx.params().slots();
    let mut bits = Vec::with_capacity(CTS_PER_SCALE * slots);
    for _ in 0..CTS_PER_SCALE {
        let vals: Vec<f64> = (0..slots).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let ct = ctx.encrypt(&ctx.encode(&vals, ctx.max_level()), &keys.public, &mut rng);
        let adj = ev
            .adjust_to(&ct, ctx.max_level() - 1)
            .expect("downward adjust");
        let got = ctx
            .decrypt_to_values(&adj, &keys.secret, slots)
            .expect("budget positive");
        for (g, v) in got.iter().zip(&vals) {
            let err = (g - v).abs().max(1e-18);
            bits.push(-err.log2());
        }
    }
    bits
}

fn main() {
    println!("Fig. 19 — adjust precision distribution (error-free mantissa bits)\n");
    println!(
        "{:>6} {:<10} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "scale", "scheme", "min", "q1", "median", "q3", "max"
    );
    let mut rows = Vec::new();
    for scale in [30u32, 35, 40, 45, 50, 55, 60] {
        for repr in [Representation::BitPacker, Representation::RnsCkks] {
            let mut bits = adjust_precision_bits(repr, scale, 0x19 + scale as u64);
            let b = box_stats(&mut bits);
            println!(
                "{scale:>6} {:<10} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
                repr.to_string(),
                b.min,
                b.q1,
                b.median,
                b.q3,
                b.max
            );
            rows.push(format!(
                "{scale},{repr},{:.2},{:.2},{:.2},{:.2},{:.2}",
                b.min, b.q1, b.median, b.q3, b.max
            ));
        }
    }
    println!("\npaper: negligible differences between the two representations,");
    println!("within the 0.5-bit moduli-selection margin");
    write_csv(
        "fig19_adjust_precision.csv",
        "scale_bits,scheme,min,q1,median,q3,max",
        &rows,
    );
}
