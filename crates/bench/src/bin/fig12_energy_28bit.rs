//! Fig. 12: energy on 28-bit CraterLake, normalized to BitPacker, with the
//! level-management (rescale/adjust) share broken out.
//!
//! Paper: 59% gmean energy reduction; level management is a small share for
//! both schemes (6% BitPacker / 7% RNS-CKKS gmean), and *lower in absolute
//! terms* for BitPacker thanks to batched CRB shedding.

use bp_accel::AcceleratorConfig;
use bp_bench::{gmean, run_workload, write_csv};
use bp_ckks::{Representation, SecurityLevel};
use bp_workloads::WorkloadSpec;

fn main() {
    let cfg = AcceleratorConfig::craterlake();
    println!("Fig. 12 — energy on 28-bit CraterLake (normalized to BitPacker total)\n");
    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "workload", "BP (mJ)", "BP lvl%", "RC (mJ)", "RC lvl%", "RC norm", "EDP x"
    );
    let mut rows = Vec::new();
    let (mut norms, mut edps, mut bp_lvl, mut rc_lvl) = (vec![], vec![], vec![], vec![]);
    for spec in WorkloadSpec::all() {
        let bp = run_workload(
            &spec,
            Representation::BitPacker,
            &cfg,
            SecurityLevel::Bits128,
        );
        let rc = run_workload(&spec, Representation::RnsCkks, &cfg, SecurityLevel::Bits128);
        let (ebp, erc) = (bp.energy.total_mj(), rc.energy.total_mj());
        let lvl_bp = bp.levelmgmt_mj / ebp;
        let lvl_rc = rc.levelmgmt_mj / erc;
        let norm = erc / ebp;
        let edp = rc.edp() / bp.edp();
        println!(
            "{:<28} {:>9.1} {:>8.1}% {:>9.1} {:>8.1}% {:>8.2} {:>8.2}",
            spec.name(),
            ebp,
            lvl_bp * 100.0,
            erc,
            lvl_rc * 100.0,
            norm,
            edp
        );
        rows.push(format!(
            "{},{ebp:.2},{lvl_bp:.4},{erc:.2},{lvl_rc:.4},{norm:.3},{edp:.3}",
            spec.name()
        ));
        norms.push(norm);
        edps.push(edp);
        bp_lvl.push(lvl_bp);
        rc_lvl.push(lvl_rc);
    }
    println!(
        "\ngmean RNS-CKKS energy overhead: {:.2}x (paper: 1.59x)",
        gmean(&norms)
    );
    println!(
        "gmean level-mgmt share: BitPacker {:.1}%  RNS-CKKS {:.1}% (paper: 6% / 7%)",
        gmean(&bp_lvl) * 100.0,
        gmean(&rc_lvl) * 100.0
    );
    println!("gmean EDP improvement: {:.2}x (paper: 2.53x)", gmean(&edps));
    write_csv(
        "fig12_energy_28bit.csv",
        "workload,bp_mj,bp_lvl_share,rc_mj,rc_lvl_share,rc_norm,edp_ratio",
        &rows,
    );
}
