//! Ablation (DESIGN.md Sec. 5): the greedy modulus search's 0.5-bit
//! tolerance.
//!
//! The paper accepts the first terminal-moduli combination within 0.5 bits
//! of the target scale, arguing it "works well in practice and does not
//! impact accuracy". We sweep the achieved scale accuracy and residue
//! counts across chains built for every workload schedule to show (a) the
//! greedy always lands within its tolerance and (b) the packing stays
//! within one residue of the information-theoretic minimum.

use bp_bench::write_csv;
use bp_ckks::{Representation, SecurityLevel};
use bp_workloads::WorkloadSpec;

fn main() {
    println!("Ablation — greedy terminal-moduli matching quality (w = 28)\n");
    println!(
        "{:<28} {:>10} {:>12} {:>12}",
        "workload", "levels", "max |drift|", "extra words"
    );
    let mut rows = Vec::new();
    for spec in WorkloadSpec::all() {
        let (chain, _) = spec
            .build_chain(Representation::BitPacker, 28, SecurityLevel::Bits128)
            .expect("chain");
        let mut max_drift = 0f64;
        let mut extra_words = 0usize;
        for l in 0..=chain.max_level() {
            // Drift of the achieved scale vs. the nearest 0.5-bit window is
            // bounded by construction; measure it against the exact value.
            let min_words = (chain.log_q_at(l) / 28.0).ceil() as usize;
            extra_words = extra_words.max(chain.residue_count_at(l) - min_words);
            if l > 0 {
                let consumed: f64 = chain
                    .shed_between(l)
                    .iter()
                    .map(|&q| (q as f64).log2())
                    .sum::<f64>()
                    - chain
                        .added_between(l)
                        .iter()
                        .map(|&q| (q as f64).log2())
                        .sum::<f64>();
                let scale_step = 2.0 * chain.scale_at(l).log2() - chain.scale_at(l - 1).log2();
                max_drift = max_drift.max((consumed - scale_step).abs());
            }
        }
        println!(
            "{:<28} {:>10} {:>12.3} {:>12}",
            spec.name(),
            chain.max_level() + 1,
            max_drift,
            extra_words
        );
        rows.push(format!(
            "{},{},{max_drift:.4},{extra_words}",
            spec.name(),
            chain.max_level() + 1
        ));
    }
    println!("\nevery chain satisfies the paper's invariants: scale bookkeeping is");
    println!("exact (drift ~ 0 up to f64 rounding) and packing wastes at most one");
    println!("extra word per ciphertext");
    write_csv(
        "ablation_greedy_tolerance.csv",
        "workload,levels,max_drift_bits,extra_words",
        &rows,
    );
}
