//! Fig. 16: gmean execution time × die area across word sizes (inverse of
//! performance per area), normalized to BitPacker at 28-bit words.
//!
//! Paper: BitPacker trends gently upward (wider words cost area), RNS-CKKS
//! grows faster; RNS-CKKS at 64 bits has 2.5x worse performance/area than
//! BitPacker at 28 bits — making the narrow 28-bit datapath the most
//! efficient design point.

use bp_accel::{area, AcceleratorConfig};
use bp_bench::{gmean, run_workload, write_csv, WORD_SIZES};
use bp_ckks::{Representation, SecurityLevel};
use bp_workloads::WorkloadSpec;

fn main() {
    let base = AcceleratorConfig::craterlake();
    println!("Fig. 16 — gmean (time x area), normalized to BitPacker @ 28-bit\n");
    println!(
        "{:>4} {:>10} {:>12} {:>12}",
        "w", "area mm2", "BitPacker", "RNS-CKKS"
    );
    let mut rows = Vec::new();
    let mut baseline = None;
    for w in WORD_SIZES {
        let cfg = base.with_word_bits(w);
        let a = area::die_area(&cfg).total_mm2();
        let mut bp_ta = Vec::new();
        let mut rc_ta = Vec::new();
        for spec in WorkloadSpec::all() {
            let bp = run_workload(
                &spec,
                Representation::BitPacker,
                &cfg,
                SecurityLevel::Bits128,
            );
            let rc = run_workload(&spec, Representation::RnsCkks, &cfg, SecurityLevel::Bits128);
            bp_ta.push(bp.ms * a);
            rc_ta.push(rc.ms * a);
        }
        let (gbp, grc) = (gmean(&bp_ta), gmean(&rc_ta));
        let norm = *baseline.get_or_insert(gbp);
        println!("{w:>4} {a:>10.1} {:>12.2} {:>12.2}", gbp / norm, grc / norm);
        rows.push(format!("{w},{a:.1},{:.4},{:.4}", gbp / norm, grc / norm));
    }
    println!("\npaper: RNS-CKKS @ 64-bit is 2.5x worse perf/area than BitPacker @ 28-bit");
    write_csv(
        "fig16_perf_area.csv",
        "word_bits,area_mm2,bp_time_x_area,rc_time_x_area",
        &rows,
    );
}
