//! Exhaustive coverage of the unified error taxonomy: every variant of
//! every layer's error enum must (1) render a non-empty, informative
//! `Display`, (2) expose a consistent `source()` chain (wrappers link to
//! the wrapped error, leaves return `None`), and (3) carry the correct
//! transience classification — the contract the fault-tolerant runtime's
//! retry machinery is built on.
//!
//! This test is deliberately brittle against taxonomy growth: adding a
//! variant without extending the constructors below fails the
//! completeness assertions, which is the point.

use bitpacker::ckks::wire::WireError;
use bitpacker::ckks::{ChainError, ContextError, EvalError, IntegrityError, ParamsError};
use bitpacker::rns::{CancelReason, Domain, RnsError};
use bitpacker::runtime::{CheckpointError, RuntimeError};
use bitpacker::Error;
use std::error::Error as StdError;

/// Every `RnsError` variant. Transient: only `UnreducedCoefficient`
/// (detected data corruption); everything else is a programming or
/// structural error that retry reproduces.
fn all_rns() -> Vec<(RnsError, bool)> {
    vec![
        (RnsError::DegreeMismatch { left: 8, right: 16 }, false),
        (
            RnsError::DomainMismatch {
                left: Domain::Coeff,
                right: Domain::Ntt,
            },
            false,
        ),
        (
            RnsError::WrongDomain {
                op: "ntt_mul",
                found: Domain::Coeff,
                required: Domain::Ntt,
            },
            false,
        ),
        (
            RnsError::BasisMismatch {
                left: vec![17],
                right: vec![23],
            },
            false,
        ),
        (RnsError::MissingModulus { modulus: 97 }, false),
        (
            RnsError::NotEnoughResidues {
                op: "rescale",
                have: 1,
                need: 2,
            },
            false,
        ),
        (RnsError::EmptyBasis, false),
        (RnsError::DuplicateModulus { modulus: 97 }, false),
        (
            RnsError::LengthMismatch {
                what: "scales",
                expected: 3,
                found: 2,
            },
            false,
        ),
        (RnsError::EvenGaloisElement { t: 4 }, false),
        (
            RnsError::UnreducedCoefficient {
                modulus: 97,
                index: 3,
                value: 120,
            },
            true,
        ),
    ]
}

/// Every `IntegrityError` variant — all transient: integrity failures
/// mean *this copy* of the data is damaged; a fresh copy can clear them.
fn all_integrity() -> Vec<IntegrityError> {
    vec![
        IntegrityError::LevelOutOfRange { level: 9, max: 3 },
        IntegrityError::ResidueCount {
            poly: "c0",
            expected: 3,
            found: 2,
        },
        IntegrityError::ModulusMismatch {
            poly: "c1",
            index: 0,
            expected: 97,
            found: 89,
        },
        IntegrityError::DomainMismatch {
            c0: Domain::Coeff,
            c1: Domain::Ntt,
        },
        IntegrityError::ScaleOutOfRange { log2: -3.0 },
        IntegrityError::Corrupted(RnsError::UnreducedCoefficient {
            modulus: 97,
            index: 0,
            value: 97,
        }),
    ]
}

/// Every `EvalError` variant with its expected transience.
fn all_eval() -> Vec<(EvalError, bool)> {
    vec![
        (EvalError::LevelMismatch { left: 3, right: 1 }, false),
        (
            EvalError::ScaleMismatch {
                left_log2: 30.0,
                right_log2: 60.0,
            },
            false,
        ),
        (
            EvalError::PlaintextLevelMismatch {
                ciphertext: 2,
                plaintext: 3,
            },
            false,
        ),
        (
            EvalError::PlaintextScaleMismatch {
                ciphertext_log2: 30.0,
                plaintext_log2: 35.0,
            },
            false,
        ),
        (
            EvalError::MissingRotationKey {
                steps: 5,
                normalized: 5,
            },
            false,
        ),
        (EvalError::MissingConjugationKey, false),
        (EvalError::LevelExhausted { op: "rescale" }, false),
        (EvalError::AdjustUpward { from: 1, to: 3 }, false),
        (
            EvalError::AutoAlignFailed {
                reason: "diverging scales".into(),
            },
            false,
        ),
        (
            EvalError::BudgetExhausted {
                noise_bits: 30.0,
                message_bits: 29.0,
            },
            true,
        ),
        (
            EvalError::Integrity(IntegrityError::LevelOutOfRange { level: 9, max: 3 }),
            true,
        ),
        (EvalError::Unsupported("conjugate on BFV".into()), false),
        (
            EvalError::Rns(RnsError::UnreducedCoefficient {
                modulus: 97,
                index: 0,
                value: 97,
            }),
            true,
        ),
        (EvalError::Rns(RnsError::EmptyBasis), false),
        (EvalError::Cancelled(CancelReason::Requested), false),
        (EvalError::Cancelled(CancelReason::DeadlineExceeded), false),
    ]
}

/// Every `WireError` variant with its expected transience.
fn all_wire() -> Vec<(WireError, bool)> {
    vec![
        (WireError::Malformed("bad magic".into()), false),
        (WireError::Incompatible("ring degree".into()), false),
        (
            WireError::Integrity(IntegrityError::ScaleOutOfRange { log2: 0.0 }),
            true,
        ),
    ]
}

/// Every `CheckpointError` variant with its expected transience.
fn all_checkpoint() -> Vec<(CheckpointError, bool)> {
    vec![
        (CheckpointError::Truncated { need: 8, have: 3 }, false),
        (CheckpointError::BadMagic { found: *b"XXXX" }, false),
        (CheckpointError::UnsupportedVersion { found: 99 }, false),
        (
            CheckpointError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            },
            true,
        ),
        (CheckpointError::Malformed("trailing bytes"), false),
        (CheckpointError::MissingSlot { name: "w".into() }, false),
        (
            CheckpointError::Wire {
                name: "w".into(),
                source: WireError::Integrity(IntegrityError::ScaleOutOfRange { log2: 0.0 }),
            },
            true,
        ),
        (
            CheckpointError::Wire {
                name: "w".into(),
                source: WireError::Malformed("short".into()),
            },
            false,
        ),
    ]
}

/// Every `RuntimeError` variant with its expected transience.
fn all_runtime() -> Vec<(RuntimeError, bool)> {
    vec![
        (
            RuntimeError::JobPanicked {
                workload: "w".into(),
                message: "boom".into(),
            },
            false,
        ),
        (RuntimeError::DeadlineExceeded, false),
        (RuntimeError::Cancelled, false),
        (
            RuntimeError::CircuitOpen {
                workload: "w".into(),
            },
            false,
        ),
        (
            RuntimeError::RetriesExhausted {
                workload: "w".into(),
                attempts: 3,
                last: Box::new(RuntimeError::Checkpoint(
                    CheckpointError::ChecksumMismatch {
                        stored: 1,
                        computed: 2,
                    },
                )),
            },
            false,
        ),
        (
            RuntimeError::Eval(EvalError::BudgetExhausted {
                noise_bits: 1.0,
                message_bits: 0.0,
            }),
            true,
        ),
        (RuntimeError::Wire(WireError::Malformed("x".into())), false),
        (
            RuntimeError::Checkpoint(CheckpointError::ChecksumMismatch {
                stored: 0,
                computed: 1,
            }),
            true,
        ),
    ]
}

fn assert_display_nonempty(err: &dyn StdError, ctx: &str) {
    let msg = err.to_string();
    assert!(!msg.trim().is_empty(), "{ctx}: empty Display");
    // Walk the full source chain: every link must also render.
    let mut cur = err.source();
    let mut depth = 0;
    while let Some(e) = cur {
        assert!(!e.to_string().trim().is_empty(), "{ctx}: empty source link");
        cur = e.source();
        depth += 1;
        assert!(depth < 10, "{ctx}: cyclic source chain");
    }
}

#[test]
fn rns_errors_display_and_classify() {
    let all = all_rns();
    assert_eq!(all.len(), 11, "update this test when RnsError grows");
    for (e, transient) in &all {
        assert_display_nonempty(e, &format!("{e:?}"));
        assert_eq!(e.is_transient(), *transient, "{e:?}");
        assert!(e.source().is_none(), "RnsError is a leaf: {e:?}");
    }
}

#[test]
fn integrity_errors_display_and_are_all_transient() {
    let all = all_integrity();
    assert_eq!(all.len(), 6, "update this test when IntegrityError grows");
    for e in &all {
        assert_display_nonempty(e, &format!("{e:?}"));
        assert!(e.is_transient(), "integrity failures are transient: {e:?}");
    }
}

#[test]
fn eval_errors_display_and_classify() {
    let all = all_eval();
    assert_eq!(all.len(), 16, "update this test when EvalError grows");
    for (e, transient) in &all {
        assert_display_nonempty(e, &format!("{e:?}"));
        assert_eq!(e.is_transient(), *transient, "{e:?}");
    }
    // Wrapper variants expose their source.
    assert!(
        EvalError::Integrity(IntegrityError::LevelOutOfRange { level: 1, max: 0 })
            .source()
            .is_some()
    );
    assert!(EvalError::Rns(RnsError::EmptyBasis).source().is_some());
}

#[test]
fn wire_errors_display_and_classify() {
    for (e, transient) in &all_wire() {
        assert_display_nonempty(e, &format!("{e:?}"));
        assert_eq!(e.is_transient(), *transient, "{e:?}");
    }
}

#[test]
fn checkpoint_errors_display_and_classify() {
    for (e, transient) in &all_checkpoint() {
        assert_display_nonempty(e, &format!("{e:?}"));
        assert_eq!(e.is_transient(), *transient, "{e:?}");
    }
    // The Wire wrapper links its source.
    let wrapped = CheckpointError::Wire {
        name: "w".into(),
        source: WireError::Malformed("x".into()),
    };
    assert!(wrapped.source().is_some());
}

#[test]
fn runtime_errors_display_and_classify() {
    for (e, transient) in &all_runtime() {
        assert_display_nonempty(e, &format!("{e:?}"));
        assert_eq!(e.is_transient(), *transient, "{e:?}");
    }
    // RetriesExhausted chains to the final attempt's error.
    let exhausted = RuntimeError::RetriesExhausted {
        workload: "w".into(),
        attempts: 2,
        last: Box::new(RuntimeError::Eval(EvalError::MissingConjugationKey)),
    };
    assert!(exhausted.source().is_some());
}

#[test]
fn facade_error_wraps_every_layer_and_preserves_transience() {
    let cases: Vec<(Error, bool)> = vec![
        (Error::Params(ParamsError::Invalid("log_n".into())), false),
        (
            Error::Chain(ChainError::TargetUnmatched { level: 2 }),
            false,
        ),
        (
            Error::Chain(ChainError::NotEnoughPrimes("w=20".into())),
            false,
        ),
        (
            Error::Chain(ChainError::SecurityExceeded {
                needed: 900,
                allowed: 881,
            }),
            false,
        ),
        (
            Error::Context(ContextError::Unsupported("w>61".into())),
            false,
        ),
        (
            Error::Context(ContextError::Chain(ChainError::TargetUnmatched {
                level: 0,
            })),
            false,
        ),
        (
            Error::Eval(EvalError::BudgetExhausted {
                noise_bits: 2.0,
                message_bits: 1.0,
            }),
            true,
        ),
        (Error::Wire(WireError::Malformed("m".into())), false),
        (
            Error::Rns(RnsError::UnreducedCoefficient {
                modulus: 97,
                index: 0,
                value: 97,
            }),
            true,
        ),
        (Error::Runtime(RuntimeError::DeadlineExceeded), false),
        (
            Error::Runtime(RuntimeError::Checkpoint(
                CheckpointError::ChecksumMismatch {
                    stored: 0,
                    computed: 1,
                },
            )),
            true,
        ),
    ];
    for (e, transient) in &cases {
        assert_display_nonempty(e, &format!("{e:?}"));
        assert_eq!(e.is_transient(), *transient, "{e:?}");
        assert!(
            e.source().is_some(),
            "every facade variant wraps a layer error: {e:?}"
        );
    }

    // From impls cover the runtime layer too.
    let via_from: Error = RuntimeError::Cancelled.into();
    assert!(matches!(via_from, Error::Runtime(RuntimeError::Cancelled)));
}
