//! Cross-crate integration tests: the full pipeline from parameter
//! selection through encrypted computation to accelerator simulation.

use bitpacker::accel::{simulate, AcceleratorConfig};
use bitpacker::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

#[test]
fn facade_reexports_work_together() {
    // math -> rns -> ckks -> workloads -> accel, all through the facade.
    let q = bitpacker::math::primes::ntt_primes_below(28, 1 << 7)
        .next()
        .expect("prime");
    let m = Modulus::new(q);
    assert_eq!(m.mul(m.inv(3).expect("inv"), 3), 1);

    let pool = PrimePool::new(1 << 6);
    let poly = RnsPoly::from_i64_coeffs(&pool, &[q], &[1, 2, 3]);
    assert_eq!(poly.num_residues(), 1);
}

#[test]
fn both_representations_agree_on_results() {
    // The paper's core functional claim: BitPacker is a re-representation,
    // not a different scheme — same inputs, same outputs (within noise).
    let mut outputs = Vec::new();
    for repr in [Representation::RnsCkks, Representation::BitPacker] {
        let params = CkksParams::builder()
            .log_n(8)
            .word_bits(28)
            .representation(repr)
            .security(SecurityLevel::Insecure)
            .levels(4, 30)
            .base_modulus_bits(40)
            .build()
            .expect("params");
        let ctx = CkksContext::new(&params).expect("context");
        let mut rng = ChaCha20Rng::seed_from_u64(2024);
        let keys = ctx.keygen(&mut rng);
        let ev = ctx.evaluator();
        let x = vec![0.9, -0.3, 0.1, 0.7];
        let ct = ctx.encrypt(&ctx.encode(&x, ctx.max_level()), &keys.public, &mut rng);
        // ((x^2)^2) across two levels.
        let a = ev
            .rescale(&ev.mul(&ct, &ct, &keys.evaluation).unwrap())
            .unwrap();
        let b = ev
            .rescale(&ev.mul(&a, &a, &keys.evaluation).unwrap())
            .unwrap();
        outputs.push(ctx.decrypt_to_values(&b, &keys.secret, 4).unwrap());
    }
    for (u, v) in outputs[0].iter().zip(&outputs[1]) {
        assert!((u - v).abs() < 1e-3, "representations disagree: {u} vs {v}");
    }
    // And both match the plaintext computation.
    for (u, x) in outputs[0].iter().zip([0.9f64, -0.3, 0.1, 0.7]) {
        assert!((u - x.powi(4)).abs() < 1e-3);
    }
}

#[test]
fn workload_to_accelerator_pipeline() {
    // Full modeling path: workload -> chain -> trace -> simulation.
    let spec = WorkloadSpec {
        app: App::LogReg,
        bootstrap: Bootstrap::BS19,
    };
    let cfg = AcceleratorConfig::craterlake();
    let mut ms = Vec::new();
    for repr in [Representation::BitPacker, Representation::RnsCkks] {
        let (chain, al) = spec
            .build_chain(repr, 28, SecurityLevel::Bits128)
            .expect("chain");
        // Chain invariants observable from outside.
        assert!(chain.log_q_at(chain.max_level()) > 500.0);
        for &q in chain.moduli_at(chain.max_level()) {
            assert!(q < 1 << 28);
        }
        let (trace, ctx) = spec.trace(&chain, al);
        assert!(!trace.is_empty());
        let rep = simulate(&trace, &cfg, &ctx, spec.working_set_mb(&chain));
        assert!(rep.ms > 0.0 && rep.energy.total_mj() > 0.0);
        ms.push(rep.ms);
    }
    assert!(
        ms[0] < ms[1],
        "BitPacker must be faster: {} vs {} ms",
        ms[0],
        ms[1]
    );
}

#[test]
fn chain_scales_survive_roundtrip_through_evaluation() {
    // Exact scale bookkeeping: after every rescale, the ciphertext's scale
    // equals the chain's published per-level scale *exactly*.
    let params = CkksParams::builder()
        .log_n(7)
        .word_bits(28)
        .representation(Representation::BitPacker)
        .security(SecurityLevel::Insecure)
        .levels(5, 26)
        .base_modulus_bits(30)
        .build()
        .expect("params");
    let ctx = CkksContext::new(&params).expect("context");
    let mut rng = ChaCha20Rng::seed_from_u64(3);
    let keys = ctx.keygen(&mut rng);
    let ev = ctx.evaluator();
    let mut ct = ctx.encrypt(&ctx.encode(&[0.6], ctx.max_level()), &keys.public, &mut rng);
    while ct.level() > 0 {
        ct = ev
            .rescale(&ev.mul(&ct, &ct, &keys.evaluation).unwrap())
            .unwrap();
        assert_eq!(ct.scale(), ctx.chain().scale_at(ct.level()));
        assert_eq!(ct.moduli(), ctx.chain().moduli_at(ct.level()));
    }
}

#[test]
fn trace_categories_cover_level_management() {
    let spec = WorkloadSpec {
        app: App::Rnn,
        bootstrap: Bootstrap::BS26,
    };
    let (chain, al) = spec
        .build_chain(Representation::BitPacker, 32, SecurityLevel::Bits128)
        .expect("chain");
    let (trace, ctx) = spec.trace(&chain, al);
    let cfg = AcceleratorConfig::craterlake().with_word_bits(32);
    let rep = simulate(&trace, &cfg, &ctx, 0.0);
    let share = rep.levelmgmt_mj / rep.energy.total_mj();
    assert!(
        (0.001..0.25).contains(&share),
        "level-management share {share:.3} implausible"
    );
}
