//! # BitPacker
//!
//! A reproduction of *"BitPacker: Enabling High Arithmetic Efficiency in
//! Fully Homomorphic Encryption Accelerators"* (Samardzic & Sanchez,
//! ASPLOS 2024) as a complete Rust workspace:
//!
//! * a full CKKS FHE library ([`ckks`]) with **two interchangeable RNS
//!   representations** — the classic RNS-CKKS baseline and BitPacker's
//!   fixed-width limb packing,
//! * the number-theoretic substrate ([`math`], [`rns`]),
//! * a CraterLake-class accelerator performance/energy/area model
//!   ([`accel`]),
//! * structural models of the paper's five application benchmarks
//!   ([`workloads`]).
//!
//! This facade crate re-exports the most common types; the `bp-bench`
//! crate (not re-exported) regenerates every table and figure of the
//! paper's evaluation.
//!
//! ## Quick start
//!
//! ```
//! use bitpacker::prelude::*;
//! use rand::SeedableRng;
//!
//! // A small BitPacker context: N = 64, three 30-bit levels, 28-bit words.
//! let params = CkksParams::builder()
//!     .log_n(6)
//!     .word_bits(28)
//!     .representation(Representation::BitPacker)
//!     .security(SecurityLevel::Insecure)
//!     .levels(3, 30)
//!     .base_modulus_bits(35)
//!     .build()?;
//! let ctx = CkksContext::new(&params)?;
//! let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(1);
//! let keys = ctx.keygen(&mut rng);
//! let ev = ctx.evaluator();
//!
//! let x = vec![0.5, -0.25, 0.125];
//! let ct = ctx.encrypt(&ctx.encode(&x, ctx.max_level()), &keys.public, &mut rng);
//! let sq = ev.rescale(&ev.mul(&ct, &ct, &keys.evaluation));
//! let back = ctx.decrypt_to_values(&sq, &keys.secret, 3);
//! assert!((back[0] - 0.25).abs() < 1e-3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use bp_accel as accel;
pub use bp_ckks as ckks;
pub use bp_math as math;
pub use bp_rns as rns;
pub use bp_workloads as workloads;

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use bp_accel::{simulate, AcceleratorConfig, FheOp, TraceContext, TraceOp};
    pub use bp_ckks::{
        Ciphertext, CkksContext, CkksParams, Evaluator, KeySet, ModulusChain, Plaintext,
        Representation, SecurityLevel,
    };
    pub use bp_math::{BigUint, FactoredScale, Modulus};
    pub use bp_rns::{Domain, PrimePool, RnsPoly};
    pub use bp_workloads::{App, Bootstrap, WorkloadSpec};
}
