//! # BitPacker
//!
//! A reproduction of *"BitPacker: Enabling High Arithmetic Efficiency in
//! Fully Homomorphic Encryption Accelerators"* (Samardzic & Sanchez,
//! ASPLOS 2024) as a complete Rust workspace:
//!
//! * a full CKKS FHE library ([`ckks`]) with **two interchangeable RNS
//!   representations** — the classic RNS-CKKS baseline and BitPacker's
//!   fixed-width limb packing,
//! * the number-theoretic substrate ([`math`], [`rns`]),
//! * a CraterLake-class accelerator performance/energy/area model
//!   ([`accel`]),
//! * structural models of the paper's five application benchmarks
//!   ([`workloads`]).
//!
//! This facade crate re-exports the most common types; the `bp-bench`
//! crate (not re-exported) regenerates every table and figure of the
//! paper's evaluation.
//!
//! ## Error handling
//!
//! The evaluation pipeline is panic-free: every fallible operation —
//! parameter construction, evaluation, serialization, decryption —
//! returns a `Result`. The crate-level [`Error`] enum unifies the
//! per-layer taxonomies ([`ckks::ParamsError`], [`ckks::ChainError`],
//! [`ckks::ContextError`], [`ckks::EvalError`],
//! [`ckks::wire::WireError`], [`rns::RnsError`]) so applications can use
//! `?` across layers; match on a variant to recover, or inspect
//! [`std::error::Error::source`] for the underlying cause. Misaligned
//! operands can either be rejected ([`ckks::EvalPolicy::Strict`]) or
//! repaired transparently ([`ckks::EvalPolicy::AutoAlign`], with repairs
//! counted in the evaluator's [`ckks::RepairLog`]).
//!
//! ## Quick start
//!
//! ```
//! use bitpacker::prelude::*;
//! use rand::SeedableRng;
//!
//! fn main() -> Result<(), bitpacker::Error> {
//!     // A small BitPacker context: N = 64, three 30-bit levels, 28-bit words.
//!     let params = CkksParams::builder()
//!         .log_n(6)
//!         .word_bits(28)
//!         .representation(Representation::BitPacker)
//!         .security(SecurityLevel::Insecure)
//!         .levels(3, 30)
//!         .base_modulus_bits(35)
//!         .build()?;
//!     let ctx = CkksContext::new(&params)?;
//!     let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(1);
//!     let keys = ctx.keygen(&mut rng);
//!     let ev = ctx.evaluator();
//!
//!     let x = vec![0.5, -0.25, 0.125];
//!     let ct = ctx.encrypt(&ctx.encode(&x, ctx.max_level()), &keys.public, &mut rng);
//!     let sq = ev.rescale(&ev.mul(&ct, &ct, &keys.evaluation)?)?;
//!     let back = ctx.decrypt_to_values(&sq, &keys.secret, 3)?;
//!     assert!((back[0] - 0.25).abs() < 1e-3);
//!     Ok(())
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use bp_accel as accel;
pub use bp_ckks as ckks;
pub use bp_ir as ir;
pub use bp_math as math;
pub use bp_rns as rns;
pub use bp_runtime as runtime;
pub use bp_workloads as workloads;

/// Unified error type spanning every layer of the workspace.
///
/// Each variant wraps one layer's error taxonomy; `From` impls let `?`
/// propagate any of them into a `Result<_, bitpacker::Error>`. The
/// wrapped error is also reachable through
/// [`std::error::Error::source`], so generic error-reporting tooling
/// prints the full chain.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Invalid parameter set ([`ckks::CkksParams`] construction).
    Params(ckks::ParamsError),
    /// Modulus-chain construction failed (no primes fit the requested
    /// scales at this ring degree / word size).
    Chain(ckks::ChainError),
    /// Context construction failed.
    Context(ckks::ContextError),
    /// A homomorphic operation was rejected (misaligned operands,
    /// missing key, exhausted levels or noise budget, ...).
    Eval(ckks::EvalError),
    /// A serialized ciphertext was malformed, incompatible with the
    /// context, or failed integrity validation.
    Wire(ckks::wire::WireError),
    /// A low-level RNS polynomial invariant was violated.
    Rns(rns::RnsError),
    /// A supervised job ended in a runtime-level terminal state (panic
    /// contained, deadline, cancellation, breaker rejection, retry
    /// exhaustion, or checkpoint failure).
    Runtime(runtime::RuntimeError),
}

impl Error {
    /// True when retrying the failed operation may succeed — the
    /// corruption-class failures the fault-tolerant runtime retries
    /// automatically (detected integrity violations, unreduced residues,
    /// checksum mismatches, noise-budget exhaustion). Structural and
    /// programming errors are permanent.
    pub fn is_transient(&self) -> bool {
        match self {
            Self::Eval(e) => e.is_transient(),
            Self::Wire(e) => e.is_transient(),
            Self::Rns(e) => e.is_transient(),
            Self::Runtime(e) => e.is_transient(),
            Self::Params(_) | Self::Chain(_) | Self::Context(_) => false,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Params(e) => write!(f, "parameter error: {e}"),
            Self::Chain(e) => write!(f, "modulus chain error: {e}"),
            Self::Context(e) => write!(f, "context error: {e}"),
            Self::Eval(e) => write!(f, "evaluation error: {e}"),
            Self::Wire(e) => write!(f, "wire format error: {e}"),
            Self::Rns(e) => write!(f, "RNS error: {e}"),
            Self::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Params(e) => Some(e),
            Self::Chain(e) => Some(e),
            Self::Context(e) => Some(e),
            Self::Eval(e) => Some(e),
            Self::Wire(e) => Some(e),
            Self::Rns(e) => Some(e),
            Self::Runtime(e) => Some(e),
        }
    }
}

impl From<runtime::RuntimeError> for Error {
    fn from(e: runtime::RuntimeError) -> Self {
        Self::Runtime(e)
    }
}

impl From<ckks::ParamsError> for Error {
    fn from(e: ckks::ParamsError) -> Self {
        Self::Params(e)
    }
}

impl From<ckks::ChainError> for Error {
    fn from(e: ckks::ChainError) -> Self {
        Self::Chain(e)
    }
}

impl From<ckks::ContextError> for Error {
    fn from(e: ckks::ContextError) -> Self {
        Self::Context(e)
    }
}

impl From<ckks::EvalError> for Error {
    fn from(e: ckks::EvalError) -> Self {
        Self::Eval(e)
    }
}

impl From<ckks::wire::WireError> for Error {
    fn from(e: ckks::wire::WireError) -> Self {
        Self::Wire(e)
    }
}

impl From<rns::RnsError> for Error {
    fn from(e: rns::RnsError) -> Self {
        Self::Rns(e)
    }
}

impl From<ckks::IntegrityError> for Error {
    fn from(e: ckks::IntegrityError) -> Self {
        Self::Eval(ckks::EvalError::Integrity(e))
    }
}

/// The most commonly used types, re-exported for convenience.
pub mod prelude {
    pub use crate::Error;
    pub use bp_accel::{simulate, AcceleratorConfig, FheOp, TraceContext, TraceOp};
    pub use bp_ckks::{
        Ciphertext, CkksContext, CkksParams, EvalError, EvalPolicy, Evaluator, IntegrityError,
        KeySet, ModulusChain, Plaintext, RepairLog, Representation, SecurityLevel,
    };
    pub use bp_ir::{Program, ProgramBuilder};
    pub use bp_math::{BigUint, FactoredScale, Modulus};
    pub use bp_rns::{Domain, PrimePool, RnsError, RnsPoly};
    pub use bp_runtime::{Checkpoint, DegradePolicy, JobSpec, RetryPolicy, Runtime, RuntimeError};
    pub use bp_workloads::{App, Bootstrap, WorkloadSpec};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_wraps_every_layer_with_source() {
        let eval: Error = ckks::EvalError::LevelMismatch { left: 3, right: 1 }.into();
        assert!(matches!(eval, Error::Eval(_)));
        assert!(std::error::Error::source(&eval).is_some());

        let rns: Error = rns::RnsError::EmptyBasis.into();
        assert!(matches!(rns, Error::Rns(_)));
        assert!(std::error::Error::source(&rns).is_some());

        let wire: Error = ckks::wire::WireError::Malformed("truncated u32".into()).into();
        assert!(matches!(wire, Error::Wire(_)));

        let integ: Error = ckks::IntegrityError::LevelOutOfRange { level: 9, max: 3 }.into();
        assert!(matches!(integ, Error::Eval(ckks::EvalError::Integrity(_))));

        // Display strings stay actionable through the wrapper.
        let msg = eval.to_string();
        assert!(msg.contains("levels 3 vs 1"), "got: {msg}");
    }

    #[test]
    fn chain_error_surfaces_through_facade() {
        // A word size too small for the requested scale cannot build.
        let res = ckks::CkksParams::builder()
            .log_n(6)
            .word_bits(28)
            .representation(ckks::Representation::RnsCkks)
            .security(ckks::SecurityLevel::Insecure)
            .levels(3, 60)
            .base_modulus_bits(60)
            .build();
        let err: Error = match res {
            Err(e) => e.into(),
            Ok(p) => match ckks::CkksContext::new(&p) {
                Err(e) => e.into(),
                Ok(_) => return, // parameters built; nothing to assert
            },
        };
        assert!(!err.to_string().is_empty());
    }
}
