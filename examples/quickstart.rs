//! Quickstart: encrypt a vector, compute `x² + x` homomorphically under
//! both representations, and decrypt.
//!
//! This walks through the paper's Sec. 2.2 worked example: the product
//! must be rescaled to the next level, and the linear term must be
//! *adjusted* down so the two can be added.
//!
//! Run: `cargo run --release --example quickstart`

use bitpacker::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for repr in [Representation::RnsCkks, Representation::BitPacker] {
        let params = CkksParams::builder()
            .log_n(10)
            .word_bits(28)
            .representation(repr)
            .security(SecurityLevel::Insecure)
            .levels(4, 32)
            .base_modulus_bits(45)
            .build()?;
        let ctx = CkksContext::new(&params)?;
        let mut rng = ChaCha20Rng::seed_from_u64(42);
        let keys = ctx.keygen(&mut rng);
        let ev = ctx.evaluator();

        let x: Vec<f64> = (0..8).map(|i| i as f64 / 10.0).collect();
        let ct = ctx.encrypt(&ctx.encode(&x, ctx.max_level()), &keys.public, &mut rng);

        // x^2, rescaled one level down …
        let x2 = ev.rescale(&ev.mul(&ct, &ct, &keys.evaluation)?)?;
        // … and x adjusted to the same level and scale so they can be added.
        let x_adj = ev.adjust_to(&ct, x2.level())?;
        let result = ev.add(&x2, &x_adj)?;

        let got = ctx.decrypt_to_values(&result, &keys.secret, 8)?;
        println!("{repr}:");
        println!("  ciphertext residues at top level: {}", ct.num_residues());
        for (xi, gi) in x.iter().zip(&got) {
            let want = xi * xi + xi;
            println!("  x = {xi:.2}  x²+x = {want:.4}  decrypted = {gi:.4}");
            assert!((gi - want).abs() < 1e-2, "unexpected error");
        }

        // The same circuit under AutoAlign: the evaluator inserts the
        // adjust itself and records the repair in its log.
        let auto = ctx.evaluator_with_policy(EvalPolicy::AutoAlign);
        let x2 = auto.rescale(&auto.mul(&ct, &ct, &keys.evaluation)?)?;
        let auto_result = auto.add(&x2, &ct)?; // mismatched level: repaired
        let auto_got = ctx.decrypt_to_values(&auto_result, &keys.secret, 8)?;
        for (gi, ai) in got.iter().zip(&auto_got) {
            assert!((gi - ai).abs() < 1e-3, "auto-align drifted");
        }
        println!(
            "  AutoAlign repaired the misaligned add: {} adjust(s), {} rescale(s)",
            auto.repairs().adjusts(),
            auto.repairs().rescales()
        );
    }
    println!("\nBoth representations compute identical results; BitPacker just");
    println!("stores them in fewer hardware words (compare the residue counts).");
    Ok(())
}
