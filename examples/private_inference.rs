//! Private inference: a small encrypted multilayer perceptron with AESPA
//! (degree-2) activations — the workload family the paper's introduction
//! motivates (ResNet-20+AESPA, SqueezeNet).
//!
//! The client encrypts an input vector; the server evaluates
//! `layer(x) = (W·x + b)²` homomorphically using rotate-accumulate
//! matrix–vector products, plaintext weights, and BitPacker level
//! management. Only the client can decrypt the prediction.
//!
//! Run: `cargo run --release --example private_inference`

use bitpacker::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

const DIM: usize = 8;
const LAYERS: usize = 2;

/// Dense matrix–vector product via rotate-and-accumulate on the diagonals
/// (the standard "diagonal method" used by encrypted NN inference).
fn matvec(
    ctx: &CkksContext,
    ev: &Evaluator<'_>,
    keys: &KeySet,
    ct: &Ciphertext,
    matrix: &[Vec<f64>],
) -> Result<Ciphertext, EvalError> {
    let slots = ctx.params().slots();
    let mut acc: Option<Ciphertext> = None;
    for (d, _) in matrix.iter().enumerate() {
        // Diagonal d of the matrix, replicated across the slot vector.
        let mut diag = vec![0.0; slots];
        for r in 0..DIM {
            diag[r] = matrix[r][(r + d) % DIM];
        }
        let rotated = if d == 0 {
            ct.clone()
        } else {
            ev.rotate(ct, d as i64, &keys.evaluation)?
        };
        let pt = ctx.encode_at_scale(
            &diag,
            rotated.level(),
            ctx.chain().scale_at(rotated.level()).clone(),
        );
        let term = ev.mul_plain(&rotated, &pt)?;
        acc = Some(match acc {
            None => term,
            Some(a) => ev.add(&a, &term)?,
        });
    }
    ev.rescale(&acc.expect("nonempty matrix"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = CkksParams::builder()
        .log_n(10)
        .word_bits(28)
        .representation(Representation::BitPacker)
        .security(SecurityLevel::Insecure)
        .levels(2 * LAYERS + 1, 32)
        .base_modulus_bits(45)
        .build()?;
    let ctx = CkksContext::new(&params)?;
    let mut rng = ChaCha20Rng::seed_from_u64(7);
    let mut keys = ctx.keygen(&mut rng);
    ctx.gen_rotation_keys(&mut keys, &(1..DIM as i64).collect::<Vec<_>>(), &mut rng);
    let ev = ctx.evaluator();

    // Random "trained" weights, row-normalized so activations stay in range.
    let weights: Vec<Vec<Vec<f64>>> = (0..LAYERS)
        .map(|_| {
            (0..DIM)
                .map(|_| {
                    (0..DIM)
                        .map(|_| rng.gen_range(-1.0..1.0) / DIM as f64)
                        .collect()
                })
                .collect()
        })
        .collect();

    // Client side: encrypt the input.
    let input: Vec<f64> = (0..DIM).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut ct = ctx.encrypt(&ctx.encode(&input, ctx.max_level()), &keys.public, &mut rng);

    // Server side: evaluate the network on ciphertexts only.
    let mut reference = input.clone();
    for w in &weights {
        ct = matvec(&ctx, &ev, &keys, &ct, w)?;
        ct = ev.rescale(&ev.mul(&ct, &ct, &keys.evaluation)?)?; // AESPA square
                                                                // Plaintext reference for verification.
        let mut out = vec![0.0; DIM];
        for (r, row) in w.iter().enumerate() {
            out[r] = row.iter().zip(&reference).map(|(a, b)| a * b).sum();
        }
        reference = out.into_iter().map(|v| v * v).collect();
    }

    // Client side: decrypt the prediction.
    let got = ctx.decrypt_to_values(&ct, &keys.secret, DIM)?;
    println!("encrypted {LAYERS}-layer MLP over {DIM} features (BitPacker, 28-bit words)\n");
    let mut max_err = 0f64;
    for i in 0..DIM {
        println!(
            "  neuron {i}: expected {:+.5}  decrypted {:+.5}",
            reference[i], got[i]
        );
        max_err = max_err.max((reference[i] - got[i]).abs());
    }
    println!("\nmax error {max_err:.2e} — inference correct under encryption");
    assert!(max_err < 1e-2);
    Ok(())
}
