//! The evaluator-op IR: build a program once, run it everywhere.
//!
//! `x² + x` (the quickstart circuit) expressed as a `bp-ir` program and
//! then consumed by every layer that speaks the IR: validated against
//! the chain's level budget, checked against the exact plaintext
//! reference (the oracle's semantics), interpreted under both
//! representations, serialized to canonical `bitpacker-ir/v1` JSON, and
//! lowered to the accelerator op stream — all from the same `Program`
//! value. See DESIGN.md §12.
//!
//! Run: `cargo run --release --example ir_program`

use bitpacker::prelude::*;
use bitpacker::{accel::lower_program, ckks::level_budget, workloads::chain_profile};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn params(repr: Representation) -> Result<CkksParams, bitpacker::ckks::ParamsError> {
    CkksParams::builder()
        .log_n(10)
        .word_bits(28)
        .representation(repr)
        .security(SecurityLevel::Insecure)
        .levels(4, 32)
        .base_modulus_bits(45)
        .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the circuit once. Handles are node ids; the builder is
    //    backend-agnostic — no context or keys exist yet.
    let top = CkksContext::new(&params(Representation::BitPacker)?)?.max_level();
    let mut b = ProgramBuilder::new(28);
    let x = b.input();
    let m = b.square(x);
    let sq = b.rescale(m); // x², one level down
    let x_adj = b.adjust(x, top - 1); // align the linear term (Sec. 2.2)
    let y = b.add(sq, x_adj);
    b.output("y", y);
    let program = b.finish();

    // 2. The exact-f64 plaintext reference — what the differential oracle
    //    compares every backend against.
    let input: Vec<f64> = (0..8).map(|i| i as f64 / 10.0).collect();
    let mut no_plain =
        |_pseed: u64, _n: usize| -> Vec<f64> { unreachable!("circuit has no plaintext operands") };
    let mut nodes =
        bitpacker::ir::reference::run(&program, std::slice::from_ref(&input), &mut no_plain);
    let want = nodes.remove(
        program
            .output_node("y")
            .expect("program declares output 'y'"),
    );

    // 3. Interpret it under both representations via Evaluator::run_program.
    for repr in [Representation::RnsCkks, Representation::BitPacker] {
        let ctx = CkksContext::new(&params(repr)?)?;
        assert_eq!(ctx.max_level(), top, "both chains expose the same depth");
        program.validate(&level_budget(ctx.chain()))?;

        let mut rng = ChaCha20Rng::seed_from_u64(42);
        let keys = ctx.keygen(&mut rng);
        let ct = ctx.encrypt(&ctx.encode(&input, top), &keys.public, &mut rng);
        let mut plain = |_pseed: u64, n: usize| vec![0.0; n];
        let run = ctx
            .evaluator()
            .run_program(&program, vec![ct], &keys.evaluation, &mut plain)?;
        let out = run.output("y").expect("program declares output 'y'");
        let got = ctx.decrypt_to_values(out, &keys.secret, 8)?;
        println!("{repr}:");
        for (w, g) in want.iter().zip(&got) {
            println!("  x²+x = {w:.4}  decrypted = {g:.4}");
            assert!((g - w).abs() < 1e-2, "unexpected error vs reference");
        }
    }

    // 4. One canonical wire format. Shrunk oracle traces, the replay
    //    command, and the CI `ir-conformance` job all speak this schema,
    //    and CI rejects documents that are not canonically encoded.
    let json = program.to_json(Some("x^2 + x (examples/ir_program.rs)"));
    println!("\ncanonical bitpacker-ir/v1:\n{json}");
    assert_eq!(bitpacker::ir::canonical_json(&json)?, json);
    assert_eq!(Program::from_json(&json)?, program);

    // 5. One lowering to the accelerator model: Op → FheOp with the
    //    chain's per-level residue/transition costs.
    let ctx = CkksContext::new(&params(Representation::BitPacker)?)?;
    let lowered = lower_program(&program, &chain_profile(ctx.chain()))?;
    println!("\nlowered to {} accelerator ops:", lowered.len());
    for t in &lowered {
        println!("  {:?}", t.op);
    }
    Ok(())
}
