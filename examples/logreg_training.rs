//! Encrypted logistic-regression training (a miniature HELR, the paper's
//! LogReg benchmark): gradient-descent steps computed entirely on
//! encrypted data, with the sigmoid replaced by its degree-3 polynomial
//! approximation σ(z) ≈ 0.5 + 0.15·z − 0.0015·z³ scaled for |z| ≤ 4.
//!
//! One training example per slot; weights are packed into a second
//! ciphertext. Each iteration costs 3 multiplicative levels, so the chain
//! depth bounds the iteration count (real HELR bootstraps between
//! batches — see `bp_ckks::levels::reference_bootstrap`).
//!
//! Run: `cargo run --release --example logreg_training`

use bitpacker::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = CkksParams::builder()
        .log_n(10)
        .word_bits(28)
        .representation(Representation::BitPacker)
        .security(SecurityLevel::Insecure)
        .levels(9, 35)
        .base_modulus_bits(45)
        .build()?;
    let ctx = CkksContext::new(&params)?;
    let mut rng = ChaCha20Rng::seed_from_u64(1234);
    let keys = ctx.keygen(&mut rng);
    let ev = ctx.evaluator();
    let slots = ctx.params().slots();

    // Synthetic 1-feature dataset: y = 1 if x > 0.2 (plus noise).
    let xs: Vec<f64> = (0..slots).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| {
            if x + rng.gen_range(-0.1..0.1) > 0.2 {
                1.0
            } else {
                0.0
            }
        })
        .collect();

    let ct_x = ctx.encrypt(&ctx.encode(&xs, ctx.max_level()), &keys.public, &mut rng);
    let ct_y = ctx.encrypt(&ctx.encode(&ys, ctx.max_level()), &keys.public, &mut rng);

    // Encrypted training: two gradient steps on w (replicated per slot).
    // grad_i = (sigma(w*x_i) - y_i) * x_i ; sigma approximated linearly
    // around 0 (degree-1 term of the HELR polynomial) to fit the depth of
    // this demo chain.
    let lr = 1.0;
    let mut ct_w = ctx.encrypt(
        &ctx.encode(&vec![0.0; slots], ctx.max_level()),
        &keys.public,
        &mut rng,
    );

    for step in 0..2 {
        // z = w * x  (ciphertext-ciphertext multiply + rescale)
        let aligned_x = ev.adjust_to(&ct_x, ct_w.level())?;
        let z = ev.rescale(&ev.mul(&ct_w, &aligned_x, &keys.evaluation)?)?;
        // sigma(z) - y ≈ 0.5 + 0.15 z - y
        let grad_lin = {
            let p = ctx.encode_at_scale(
                &vec![0.15; slots],
                z.level(),
                ctx.chain().scale_at(z.level()).clone(),
            );
            let scaled = ev.rescale(&ev.mul_plain(&z, &p)?)?;
            let y_adj = ev.adjust_to(&ct_y, scaled.level())?;
            let half =
                ctx.encode_at_scale(&vec![0.5; slots], scaled.level(), scaled.scale().clone());
            ev.sub(&ev.add_plain(&scaled, &half)?, &y_adj)?
        };
        // grad = (sigma - y) * x ; mean-reduce is skipped (per-slot SGD).
        let x_adj = ev.adjust_to(&ct_x, grad_lin.level())?;
        let grad = ev.rescale(&ev.mul(&grad_lin, &x_adj, &keys.evaluation)?)?;
        // w <- w - lr * grad
        let lr_pt = ctx.encode_at_scale(
            &vec![lr; slots],
            grad.level(),
            ctx.chain().scale_at(grad.level()).clone(),
        );
        let update = ev.rescale(&ev.mul_plain(&grad, &lr_pt)?)?;
        let w_aligned = ev.adjust_to(&ct_w, update.level())?;
        ct_w = ev.sub(&w_aligned, &update)?;

        println!(
            "step {step}: encrypted weight updated at level {}",
            ct_w.level()
        );
    }

    // Verify: decrypt the per-slot weights and check a few slots against
    // the exact per-slot SGD recurrence.
    let got = ctx.decrypt_to_values(&ct_w, &keys.secret, slots)?;
    let mut max_err = 0f64;
    for i in 0..8 {
        let (x, y) = (xs[i], ys[i]);
        let mut w = 0.0;
        for _ in 0..2 {
            let grad = (0.5 + 0.15 * (w * x) - y) * x;
            w -= lr * grad;
        }
        max_err = max_err.max((got[i] - w).abs());
        println!(
            "slot {i}: x {x:+.3} y {y:.0}  w_exact {w:+.5}  w_encrypted {:+.5}",
            got[i]
        );
    }
    println!("\nmax error {max_err:.2e} across checked slots");
    assert!(max_err < 1e-2, "training diverged from plaintext reference");
    Ok(())
}
