//! Encrypted logistic-regression training (a miniature HELR, the paper's
//! LogReg benchmark): gradient-descent steps computed entirely on
//! encrypted data, with the sigmoid replaced by its degree-3 polynomial
//! approximation σ(z) ≈ 0.5 + 0.15·z − 0.0015·z³ scaled for |z| ≤ 4.
//!
//! One training example per slot; weights are packed into a second
//! ciphertext. Each iteration costs 3 multiplicative levels, so the chain
//! depth bounds the iteration count (real HELR bootstraps between
//! batches — see `bp_ckks::levels::reference_bootstrap`).
//!
//! Training runs as a supervised `bp-runtime` job (deadline + contained
//! panics), and every epoch snapshots the live ciphertexts to a
//! checkpoint, so a killed run resumes **bit-identically**:
//!
//! ```text
//! cargo run --release --example logreg_training
//! # Simulate preemption after epoch 1, then resume:
//! cargo run --release --example logreg_training -- \
//!     --checkpoint /tmp/logreg.ckpt --halt-after 1
//! cargo run --release --example logreg_training -- \
//!     --checkpoint /tmp/logreg.ckpt --resume
//! ```

use bitpacker::prelude::*;
use bitpacker::runtime::Checkpoint;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha20Rng;
use std::time::Duration;

struct Args {
    /// Total gradient steps the training should reach.
    steps: u64,
    /// Where to write (and with --resume, read) the checkpoint.
    checkpoint: Option<std::path::PathBuf>,
    /// Resume from the checkpoint instead of starting at step 0.
    resume: bool,
    /// Stop after this many steps *in this invocation* (simulated kill).
    halt_after: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        steps: 2,
        checkpoint: None,
        resume: false,
        halt_after: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--steps" => args.steps = value("--steps")?.parse().map_err(|e| format!("{e}"))?,
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint")?.into()),
            "--resume" => args.resume = true,
            "--halt-after" => {
                args.halt_after = Some(value("--halt-after")?.parse().map_err(|e| format!("{e}"))?)
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.resume && args.checkpoint.is_none() {
        return Err("--resume requires --checkpoint".into());
    }
    Ok(args)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args().map_err(|e| format!("usage error: {e}"))?;

    let params = CkksParams::builder()
        .log_n(10)
        .word_bits(28)
        .representation(Representation::BitPacker)
        .security(SecurityLevel::Insecure)
        .levels(9, 35)
        .base_modulus_bits(45)
        .build()?;
    let ctx = CkksContext::new(&params)?;
    let mut rng = ChaCha20Rng::seed_from_u64(1234);
    let keys = ctx.keygen(&mut rng);
    let slots = ctx.params().slots();

    // Synthetic 1-feature dataset: y = 1 if x > 0.2 (plus noise).
    let xs: Vec<f64> = (0..slots).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| {
            if x + rng.gen_range(-0.1..0.1) > 0.2 {
                1.0
            } else {
                0.0
            }
        })
        .collect();

    let mut ct_x = ctx.encrypt(&ctx.encode(&xs, ctx.max_level()), &keys.public, &mut rng);
    let mut ct_y = ctx.encrypt(&ctx.encode(&ys, ctx.max_level()), &keys.public, &mut rng);
    let lr = 1.0;
    let mut ct_w = ctx.encrypt(
        &ctx.encode(&vec![0.0; slots], ctx.max_level()),
        &keys.public,
        &mut rng,
    );

    // Resume: replace the fresh ciphertexts with the snapshot (exact
    // scales and chain positions come back through the wire format, so
    // the continuation is bit-identical to an uninterrupted run).
    let mut start_step = 0u64;
    if args.resume {
        let path = args.checkpoint.as_ref().expect("checked in parse_args");
        let cp = Checkpoint::from_bytes(&std::fs::read(path)?)?;
        if cp.workload() != "logreg" {
            return Err(format!("checkpoint belongs to workload '{}'", cp.workload()).into());
        }
        ct_w = cp.restore(&ctx, "w")?;
        ct_x = cp.restore(&ctx, "x")?;
        ct_y = cp.restore(&ctx, "y")?;
        start_step = cp.step();
        println!("resumed '{}' at step {start_step}", cp.workload());
    }

    // Encrypted training under runtime supervision: a deadline interrupts
    // runaway circuits cooperatively, and a panicking epoch surfaces as a
    // typed error instead of tearing the process down.
    // grad_i = (sigma(w*x_i) - y_i) * x_i ; sigma approximated linearly
    // around 0 (degree-1 term of the HELR polynomial) to fit the depth of
    // this demo chain.
    let rt = Runtime::new();
    let spec = JobSpec::new("logreg").deadline(Duration::from_secs(120));
    let (ct_w, completed) = rt.run(&spec, |job| {
        let ev = ctx.evaluator().with_cancel(job.cancel_token().clone());
        let mut ct_w = ct_w.clone();
        let mut step = start_step;
        while step < args.steps {
            // z = w * x  (ciphertext-ciphertext multiply + rescale)
            let aligned_x = ev.adjust_to(&ct_x, ct_w.level())?;
            let z = ev.rescale(&ev.mul(&ct_w, &aligned_x, &keys.evaluation)?)?;
            // sigma(z) - y ≈ 0.5 + 0.15 z - y
            let grad_lin = {
                let p = ctx.encode_at_scale(
                    &vec![0.15; slots],
                    z.level(),
                    ctx.chain().scale_at(z.level()).clone(),
                );
                let scaled = ev.rescale(&ev.mul_plain(&z, &p)?)?;
                let y_adj = ev.adjust_to(&ct_y, scaled.level())?;
                let half =
                    ctx.encode_at_scale(&vec![0.5; slots], scaled.level(), scaled.scale().clone());
                ev.sub(&ev.add_plain(&scaled, &half)?, &y_adj)?
            };
            // grad = (sigma - y) * x ; mean-reduce is skipped (per-slot SGD).
            let x_adj = ev.adjust_to(&ct_x, grad_lin.level())?;
            let grad = ev.rescale(&ev.mul(&grad_lin, &x_adj, &keys.evaluation)?)?;
            // w <- w - lr * grad
            let lr_pt = ctx.encode_at_scale(
                &vec![lr; slots],
                grad.level(),
                ctx.chain().scale_at(grad.level()).clone(),
            );
            let update = ev.rescale(&ev.mul_plain(&grad, &lr_pt)?)?;
            let w_aligned = ev.adjust_to(&ct_w, update.level())?;
            ct_w = ev.sub(&w_aligned, &update)?;
            step += 1;

            println!(
                "step {}: encrypted weight updated at level {}",
                step - 1,
                ct_w.level()
            );

            // Snapshot the live state so a kill after this epoch resumes
            // exactly here.
            if let Some(path) = &args.checkpoint {
                let mut cp = Checkpoint::new("logreg", step);
                cp.insert("w", &ct_w);
                cp.insert("x", &ct_x);
                cp.insert("y", &ct_y);
                std::fs::write(path, cp.to_bytes()).map_err(|e| {
                    RuntimeError::Checkpoint(bitpacker::runtime::CheckpointError::Malformed(
                        if e.kind() == std::io::ErrorKind::NotFound {
                            "checkpoint directory does not exist"
                        } else {
                            "checkpoint write failed"
                        },
                    ))
                })?;
                println!("  checkpoint written to {} (step {step})", path.display());
            }

            if args.halt_after == Some(step - start_step) {
                println!(
                    "  halting after {} step(s) (simulated preemption)",
                    step - start_step
                );
                break;
            }
        }
        Ok((ct_w, step))
    })?;

    if completed < args.steps {
        println!(
            "\nstopped at step {completed}/{}; resume with --resume --checkpoint <path>",
            args.steps
        );
        return Ok(());
    }

    // Verify: decrypt the per-slot weights and check a few slots against
    // the exact per-slot SGD recurrence.
    let got = ctx.decrypt_to_values(&ct_w, &keys.secret, slots)?;
    let mut max_err = 0f64;
    for i in 0..8 {
        let (x, y) = (xs[i], ys[i]);
        let mut w = 0.0;
        for _ in 0..completed {
            let grad = (0.5 + 0.15 * (w * x) - y) * x;
            w -= lr * grad;
        }
        max_err = max_err.max((got[i] - w).abs());
        println!(
            "slot {i}: x {x:+.3} y {y:.0}  w_exact {w:+.5}  w_encrypted {:+.5}",
            got[i]
        );
    }
    println!("\nmax error {max_err:.2e} across checked slots");
    assert!(max_err < 1e-2, "training diverged from plaintext reference");
    Ok(())
}
