//! Accelerator design-space exploration: how BitPacker changes the optimal
//! hardware word size.
//!
//! Builds the modulus chains for one workload across word sizes, runs the
//! accelerator model, and prints time / energy / area / EDAP per design —
//! showing that BitPacker makes the narrow 28-bit datapath the best choice
//! (paper Sec. 6.2).
//!
//! Run: `cargo run --release --example accelerator_sweep`

use bitpacker::accel::{area, simulate, AcceleratorConfig};
use bitpacker::prelude::*;

fn main() {
    let spec = WorkloadSpec {
        app: App::SqueezeNet,
        bootstrap: Bootstrap::BS19,
    };
    let base = AcceleratorConfig::craterlake();
    println!(
        "design sweep for {} (iso-throughput machines)\n",
        spec.name()
    );
    println!(
        "{:>4} {:<10} {:>9} {:>10} {:>10} {:>12}",
        "w", "scheme", "time(ms)", "energy(mJ)", "area(mm2)", "EDAP"
    );
    let mut best: Option<(f64, u32, Representation)> = None;
    for w in [28u32, 36, 48, 64] {
        let cfg = base.with_word_bits(w);
        let a = area::die_area(&cfg).total_mm2();
        for repr in [Representation::BitPacker, Representation::RnsCkks] {
            let (chain, al) = spec
                .build_chain(repr, w, SecurityLevel::Bits128)
                .expect("chain");
            let (trace, ctx) = spec.trace(&chain, al);
            let rep = simulate(&trace, &cfg, &ctx, spec.working_set_mb(&chain));
            let edap = rep.edp() * a;
            println!(
                "{w:>4} {:<10} {:>9.2} {:>10.1} {:>10.1} {:>12.0}",
                repr.to_string(),
                rep.ms,
                rep.energy.total_mj(),
                a,
                edap
            );
            if best.map(|(b, _, _)| edap < b).unwrap_or(true) {
                best = Some((edap, w, repr));
            }
        }
    }
    let (_, w, repr) = best.expect("swept at least one design");
    println!("\nbest energy-delay-area product: {repr} at {w}-bit words");
    println!("(the paper's conclusion: BitPacker @ 28-bit is the efficient design point)");
}
